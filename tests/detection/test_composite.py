"""Tests for the per-device composite detector (Definition 5's a_k(j))."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, DimensionMismatchError
from repro.detection import DeviceMonitor, StepThresholdDetector, make_detector_bank


def factory():
    return StepThresholdDetector(max_step=0.1)


class TestDeviceMonitor:
    def test_or_semantics(self):
        monitor = DeviceMonitor(factory, services=2)
        monitor.observe([0.9, 0.9])
        detection = monitor.observe([0.88, 0.4])  # only service 1 jumps
        assert detection.abnormal
        assert detection.abnormal_services == (1,)

    def test_quiet_when_all_services_quiet(self):
        monitor = DeviceMonitor(factory, services=3)
        monitor.observe([0.9, 0.8, 0.7])
        assert not monitor.observe([0.88, 0.79, 0.71]).abnormal

    def test_min_abnormal_services(self):
        monitor = DeviceMonitor(factory, services=2, min_abnormal_services=2)
        monitor.observe([0.9, 0.9])
        assert not monitor.observe([0.4, 0.88]).abnormal  # one service only
        monitor2 = DeviceMonitor(factory, services=2, min_abnormal_services=2)
        monitor2.observe([0.9, 0.9])
        assert monitor2.observe([0.4, 0.4]).abnormal

    def test_dimension_checked(self):
        monitor = DeviceMonitor(factory, services=2)
        with pytest.raises(DimensionMismatchError):
            monitor.observe([0.9])

    def test_trajectory_accumulates(self):
        monitor = DeviceMonitor(factory, services=2, history=2)
        monitor.observe([0.9, 0.8])
        monitor.observe([0.85, 0.75])
        trajectory = monitor.trajectory()
        assert trajectory.shape == (2, 2)
        assert trajectory[0].tolist() == [0.9, 0.8]

    def test_history_bounded_by_default(self):
        # Long-running monitors must not leak one record per tick: the
        # default retains only the last detection.
        monitor = DeviceMonitor(factory, services=1)
        for k in range(50):
            monitor.observe([0.5 + 0.001 * (k % 3)])
        assert monitor.history_bound == 1
        assert monitor.trajectory().shape == (1, 1)
        assert monitor.last is not None

    def test_history_opt_in_larger_stays_bounded(self):
        monitor = DeviceMonitor(factory, services=1, history=4)
        for k in range(50):
            monitor.observe([0.5])
        assert monitor.trajectory().shape == (4, 1)

    def test_history_validated(self):
        with pytest.raises(ConfigurationError):
            DeviceMonitor(factory, services=1, history=0)

    def test_last_property(self):
        monitor = DeviceMonitor(factory, services=1)
        assert monitor.last is None
        monitor.observe([0.5])
        assert monitor.last is not None
        assert monitor.last.position == (0.5,)

    def test_max_score(self):
        monitor = DeviceMonitor(factory, services=2)
        monitor.observe([0.9, 0.9])
        detection = monitor.observe([0.9, 0.5])
        assert detection.max_score > 1.0

    def test_reset(self):
        monitor = DeviceMonitor(factory, services=2)
        monitor.observe([0.9, 0.9])
        monitor.reset()
        assert monitor.last is None
        assert not monitor.observe([0.1, 0.1]).abnormal  # fresh warmup

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeviceMonitor(factory, services=0)
        with pytest.raises(ConfigurationError):
            DeviceMonitor(factory, services=2, min_abnormal_services=3)


class TestDetectorBank:
    def test_bank_shape(self):
        bank = make_detector_bank(factory, devices=5, services=2)
        assert set(bank) == set(range(5))
        assert all(m.services == 2 for m in bank.values())

    def test_bank_independence(self):
        bank = make_detector_bank(factory, devices=2, services=1)
        bank[0].observe([0.9])
        bank[0].observe([0.3])
        # Device 1's detectors must be untouched by device 0's history.
        bank[1].observe([0.9])
        assert not bank[1].observe([0.88]).abnormal

    def test_bank_validation(self):
        with pytest.raises(ConfigurationError):
            make_detector_bank(factory, devices=0, services=1)
