"""Unit tests for the scalar error detection functions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.detection import (
    BandThresholdDetector,
    CusumDetector,
    EwmaDetector,
    HoltWintersDetector,
    KalmanDetector,
    SeasonalHoltWintersDetector,
    ShewhartDetector,
    StepThresholdDetector,
    detect_series,
)


def steady(value: float, count: int):
    return [value] * count


class TestStepThreshold:
    def test_flags_large_step(self):
        det = StepThresholdDetector(max_step=0.1)
        det.update(0.9)
        assert not det.update(0.85).abnormal
        assert det.update(0.3).abnormal

    def test_forecast_is_previous_value(self):
        det = StepThresholdDetector(max_step=0.1)
        det.update(0.7)
        detection = det.update(0.65)
        assert detection.forecast == pytest.approx(0.7)
        assert detection.residual == pytest.approx(-0.05)

    def test_first_sample_never_abnormal(self):
        det = StepThresholdDetector(max_step=0.05)
        assert not det.update(0.1).abnormal

    def test_reset(self):
        det = StepThresholdDetector(max_step=0.05)
        det.update(0.9)
        det.reset()
        assert not det.update(0.1).abnormal
        assert det.samples_seen == 1

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_bad_max_step(self, bad):
        with pytest.raises(ConfigurationError):
            StepThresholdDetector(max_step=bad)

    def test_out_of_range_sample_rejected(self):
        det = StepThresholdDetector(max_step=0.1)
        with pytest.raises(ConfigurationError):
            det.update(1.2)


class TestBandThreshold:
    def test_band_membership(self):
        det = BandThresholdDetector(low=0.8)
        assert not det.update(0.9).abnormal
        assert det.update(0.7).abnormal

    def test_band_validation(self):
        with pytest.raises(ConfigurationError):
            BandThresholdDetector(low=0.9, high=0.8)

    def test_warmup_suppresses(self):
        det = BandThresholdDetector(low=0.8, warmup=2)
        assert not det.update(0.1).abnormal
        assert not det.update(0.1).abnormal
        assert det.update(0.1).abnormal


class TestEwma:
    def test_steady_series_quiet(self):
        det = EwmaDetector()
        verdicts = detect_series(det, steady(0.9, 50))
        assert not any(v.abnormal for v in verdicts)

    def test_level_shift_flagged(self):
        det = EwmaDetector(alpha=0.3, nsigma=4.0, warmup=5)
        rng = np.random.default_rng(0)
        for _ in range(30):
            det.update(float(np.clip(0.9 + rng.normal(0, 0.005), 0, 1)))
        assert det.update(0.4).abnormal

    def test_abnormal_samples_do_not_update_mean(self):
        det = EwmaDetector(alpha=0.3, nsigma=3.0, warmup=2)
        for _ in range(10):
            det.update(0.9)
        det.update(0.1)  # flagged, must not drag the mean down
        detection = det.update(0.9)
        assert not detection.abnormal

    def test_slow_drift_tracked(self):
        det = EwmaDetector(alpha=0.3, nsigma=6.0, warmup=3, min_std=5e-3)
        value = 0.9
        abnormal = 0
        for _ in range(200):
            value = max(0.0, value - 0.001)
            abnormal += det.update(value).abnormal
        assert abnormal == 0

    @pytest.mark.parametrize("alpha", [0.0, 1.2])
    def test_alpha_validation(self, alpha):
        with pytest.raises(ConfigurationError):
            EwmaDetector(alpha=alpha)


class TestCusum:
    def test_steady_series_quiet(self):
        det = CusumDetector(threshold=0.1, drift=0.005)
        assert not any(v.abnormal for v in detect_series(det, steady(0.8, 60)))

    def test_small_persistent_shift_detected(self):
        det = CusumDetector(threshold=0.1, drift=0.005, warmup=10)
        for v in steady(0.8, 10):
            det.update(v)
        verdicts = detect_series(det, steady(0.75, 20))
        assert any(v.abnormal for v in verdicts)

    def test_detects_upward_shift_too(self):
        det = CusumDetector(threshold=0.1, drift=0.005, warmup=10)
        for v in steady(0.5, 10):
            det.update(v)
        assert any(v.abnormal for v in detect_series(det, steady(0.56, 20)))

    def test_statistics_reset_on_alarm(self):
        det = CusumDetector(threshold=0.05, drift=0.0, warmup=2, mu=0.5)
        det.update(0.5)
        det.update(0.5)
        detection = det.update(0.9)
        assert detection.abnormal
        assert det.statistics == (0.0, 0.0)

    def test_learned_mu_matches_warmup_mean(self):
        det = CusumDetector(threshold=0.1, warmup=4)
        for v in (0.2, 0.4, 0.6, 0.8):
            det.update(v)
        detection = det.update(0.5)
        assert detection.forecast == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(drift=-0.1)


class TestHoltWinters:
    def test_tracks_linear_trend(self):
        det = HoltWintersDetector(warmup=5)
        abnormal = 0
        for k in range(100):
            value = min(1.0, 0.2 + 0.004 * k)
            abnormal += det.update(value).abnormal
        assert abnormal == 0

    def test_flags_break_in_trend(self):
        det = HoltWintersDetector(warmup=5)
        for k in range(50):
            det.update(min(1.0, 0.2 + 0.004 * k))
        assert det.update(0.9).abnormal

    def test_forecast_ahead(self):
        det = HoltWintersDetector()
        assert det.forecast_ahead() is None
        for k in range(20):
            det.update(0.1 + 0.01 * k)
        two_ahead = det.forecast_ahead(2)
        one_ahead = det.forecast_ahead(1)
        assert two_ahead > one_ahead

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HoltWintersDetector(alpha=0.0)
        with pytest.raises(ConfigurationError):
            HoltWintersDetector(beta=1.5)
        with pytest.raises(ConfigurationError):
            HoltWintersDetector(band=0.0)


class TestSeasonalHoltWinters:
    def test_tracks_periodic_series(self):
        period = 8
        det = SeasonalHoltWintersDetector(period=period, warmup=2 * period)
        abnormal = 0
        for k in range(160):
            value = 0.7 + 0.1 * math.sin(2 * math.pi * k / period)
            abnormal += det.update(value).abnormal
        assert abnormal == 0

    def test_flags_out_of_season_drop(self):
        period = 8
        det = SeasonalHoltWintersDetector(period=period, warmup=period)
        for k in range(80):
            det.update(0.7 + 0.1 * math.sin(2 * math.pi * k / period))
        assert det.update(0.1).abnormal

    def test_period_validation(self):
        with pytest.raises(ConfigurationError):
            SeasonalHoltWintersDetector(period=1)


class TestKalman:
    def test_steady_series_quiet(self):
        det = KalmanDetector()
        rng = np.random.default_rng(1)
        verdicts = [
            det.update(float(np.clip(0.8 + rng.normal(0, 0.01), 0, 1)))
            for _ in range(100)
        ]
        assert sum(v.abnormal for v in verdicts) == 0

    def test_level_jump_flagged(self):
        det = KalmanDetector(warmup=3)
        for _ in range(20):
            det.update(0.8)
        assert det.update(0.2).abnormal

    def test_variance_converges(self):
        det = KalmanDetector(process_var=1e-6, measurement_var=1e-3)
        for _ in range(200):
            det.update(0.5)
        _, p = det.state
        assert p < 1e-3

    def test_gated_updates_keep_estimate(self):
        det = KalmanDetector(warmup=2)
        for _ in range(20):
            det.update(0.8)
        x_before, _ = det.state
        det.update(0.2)  # gated
        x_after, _ = det.state
        assert x_after == pytest.approx(x_before, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KalmanDetector(measurement_var=0.0)
        with pytest.raises(ConfigurationError):
            KalmanDetector(nsigma=-1.0)


class TestShewhart:
    def test_steady_series_quiet(self):
        det = ShewhartDetector()
        rng = np.random.default_rng(2)
        verdicts = [
            det.update(float(np.clip(0.6 + rng.normal(0, 0.01), 0, 1)))
            for _ in range(100)
        ]
        assert sum(v.abnormal for v in verdicts) == 0

    def test_outlier_flagged(self):
        det = ShewhartDetector(window=10, nsigma=3.0, warmup=3)
        rng = np.random.default_rng(3)
        for _ in range(20):
            det.update(float(np.clip(0.6 + rng.normal(0, 0.01), 0, 1)))
        assert det.update(0.1).abnormal

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            ShewhartDetector(window=1)
