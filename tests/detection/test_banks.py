"""Equivalence contract of the vectorized detector banks.

Every ``<Family>Bank`` must be *bit-exact* equivalent to ``n x d``
independent scalar detectors of the same family: flags, per-service
verdicts, scores, forecasts and residuals all match exactly (NaN in the
arrays maps to the scalar ``None`` during warm-up).  Enforced three
ways:

* seeded randomized streams through every family (bank vs the
  :class:`ScalarDetectorBank` reference plane);
* hypothesis property tests per family, sweeping series shape, warm-up
  boundaries, constant series and parameter corners;
* heterogeneous per-device parameter arrays against individually
  configured scalar detectors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, DimensionMismatchError
from repro.detection import (
    CusumDetector,
    EwmaDetector,
    ShewhartDetector,
)
from repro.detection.banks import (
    DetectorSpec,
    FAMILIES,
    PLANES,
    ScalarDetectorBank,
    as_bank,
    default_detector_spec,
    resolve_family,
    resolve_plane,
)

# Family -> spec used by the randomized sweeps (warmups short enough
# that post-warm-up behaviour is exercised, thresholds tight enough
# that abnormal verdicts actually occur).
SPECS = {
    "step": DetectorSpec("step", {"max_step": 0.08, "warmup": 2}),
    "band": DetectorSpec("band", {"low": 0.3, "high": 0.9, "warmup": 1}),
    "ewma": DetectorSpec("ewma", {"alpha": 0.3, "nsigma": 2.0, "warmup": 4}),
    "shewhart": DetectorSpec(
        "shewhart", {"window": 6, "nsigma": 1.8, "warmup": 3}
    ),
    "cusum": DetectorSpec(
        "cusum", {"threshold": 0.1, "drift": 0.005, "warmup": 5}
    ),
    "holt-winters": DetectorSpec(
        "holt-winters",
        {"alpha": 0.4, "beta": 0.2, "gamma": 0.3, "band": 2.0, "warmup": 4},
    ),
    "kalman": DetectorSpec("kalman", {"nsigma": 1.5, "warmup": 3}),
}


def assert_equivalent_steps(spec, series, *, min_abnormal_services=1):
    """Feed one series through both planes; every output must match."""
    steps, n, d = series.shape
    bank = spec.bank(n, d, min_abnormal_services=min_abnormal_services)
    ref = spec.bank(
        n, d, plane="scalar", min_abnormal_services=min_abnormal_services
    )
    raised = 0
    for k in range(steps):
        got = bank.observe_batch(series[k])
        want = ref.observe_batch(series[k])
        assert np.array_equal(got.abnormal, want.abnormal), (spec.family, k)
        assert np.array_equal(got.flags, want.flags), (spec.family, k)
        assert np.array_equal(got.scores, want.scores), (spec.family, k)
        assert np.array_equal(
            got.forecasts, want.forecasts, equal_nan=True
        ), (spec.family, k)
        assert np.array_equal(
            got.residuals, want.residuals, equal_nan=True
        ), (spec.family, k)
        raised += int(np.count_nonzero(got.abnormal))
    return raised


@pytest.mark.parametrize("family", FAMILIES)
class TestRandomizedEquivalence:
    def test_noisy_stream(self, family):
        rng = np.random.default_rng(hash(family) % 2**32)
        series = np.clip(rng.normal(0.7, 0.12, (40, 6, 2)), 0.0, 1.0)
        assert_equivalent_steps(SPECS[family], series)

    def test_stream_with_jumps_raises_somewhere(self, family):
        rng = np.random.default_rng(1 + hash(family) % 2**32)
        series = np.clip(rng.normal(0.8, 0.03, (30, 5, 2)), 0.0, 1.0)
        # Deep drops mid-stream so every family has something to flag.
        series[15:18, 1, 0] = 0.05
        series[20:24, 3, :] = 0.2
        raised = assert_equivalent_steps(SPECS[family], series)
        assert raised > 0, f"{family} never flagged the injected drops"

    def test_constant_series(self, family):
        series = np.full((25, 4, 2), 0.75)
        assert_equivalent_steps(SPECS[family], series)

    def test_min_abnormal_services(self, family):
        rng = np.random.default_rng(2 + hash(family) % 2**32)
        series = np.clip(rng.normal(0.7, 0.15, (25, 4, 3)), 0.0, 1.0)
        assert_equivalent_steps(
            SPECS[family], series, min_abnormal_services=2
        )

    def test_nan_sample_rejected_by_both_planes(self, family):
        spec = SPECS[family]
        bad = np.full((3, 2), 0.5)
        bad[1, 1] = np.nan
        for plane in PLANES:
            bank = spec.bank(3, 2, plane=plane)
            with pytest.raises(ConfigurationError):
                bank.observe_batch(bad)
            # The rejected snapshot must not count as consumed.
            assert bank.samples_seen == 0

    def test_out_of_range_sample_rejected(self, family):
        spec = SPECS[family]
        bank = spec.bank(2, 2)
        with pytest.raises(ConfigurationError):
            bank.observe_batch(np.array([[0.5, 1.2], [0.5, 0.5]]))
        with pytest.raises(ConfigurationError):
            bank.observe_batch(np.array([[0.5, -0.1], [0.5, 0.5]]))

    def test_reset_restarts_warmup(self, family):
        spec = SPECS[family]
        rng = np.random.default_rng(3)
        series = np.clip(rng.normal(0.7, 0.1, (12, 3, 2)), 0.0, 1.0)
        bank = spec.bank(3, 2)
        ref = spec.bank(3, 2)
        for k in range(12):
            bank.observe_batch(series[k])
        bank.reset()
        assert bank.samples_seen == 0
        for k in range(12):
            got = bank.observe_batch(series[k])
            want = ref.observe_batch(series[k])
            assert np.array_equal(got.flags, want.flags)
            assert np.array_equal(got.scores, want.scores)


# ----------------------------------------------------------------------
# Hypothesis property tests: series shape x warm-up boundary sweeps
# ----------------------------------------------------------------------
qos_values = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def series_strategy(max_steps=14, max_n=3, max_d=2):
    """Random (steps, n, d) QoS tensors as nested lists."""
    return st.tuples(
        st.integers(2, max_steps), st.integers(1, max_n), st.integers(1, max_d)
    ).flatmap(
        lambda shape: st.lists(
            st.lists(
                st.lists(qos_values, min_size=shape[2], max_size=shape[2]),
                min_size=shape[1],
                max_size=shape[1],
            ),
            min_size=shape[0],
            max_size=shape[0],
        )
    )


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(), warmup=st.integers(0, 12))
def test_step_property(series, warmup):
    arr = np.asarray(series)
    spec = DetectorSpec("step", {"max_step": 0.05, "warmup": warmup})
    assert_equivalent_steps(spec, arr)


@settings(max_examples=40, deadline=None)
@given(
    series=series_strategy(),
    warmup=st.integers(0, 12),
    low=st.floats(0.0, 0.8),
)
def test_band_property(series, warmup, low):
    arr = np.asarray(series)
    spec = DetectorSpec("band", {"low": low, "high": 0.9, "warmup": warmup})
    assert_equivalent_steps(spec, arr)


@settings(max_examples=40, deadline=None)
@given(
    series=series_strategy(),
    warmup=st.integers(0, 12),
    alpha=st.floats(0.05, 1.0),
    nsigma=st.floats(0.5, 4.0),
)
def test_ewma_property(series, warmup, alpha, nsigma):
    arr = np.asarray(series)
    spec = DetectorSpec(
        "ewma", {"alpha": alpha, "nsigma": nsigma, "warmup": warmup}
    )
    assert_equivalent_steps(spec, arr)


@settings(max_examples=40, deadline=None)
@given(
    series=series_strategy(max_steps=18),
    warmup=st.integers(0, 12),
    window=st.integers(2, 7),
    nsigma=st.floats(0.5, 4.0),
)
def test_shewhart_property(series, warmup, window, nsigma):
    arr = np.asarray(series)
    spec = DetectorSpec(
        "shewhart", {"window": window, "nsigma": nsigma, "warmup": warmup}
    )
    assert_equivalent_steps(spec, arr)


@settings(max_examples=40, deadline=None)
@given(
    series=series_strategy(),
    warmup=st.integers(0, 12),
    threshold=st.floats(0.02, 0.5),
    drift=st.floats(0.0, 0.05),
    reset_on_alarm=st.booleans(),
)
def test_cusum_property(series, warmup, threshold, drift, reset_on_alarm):
    arr = np.asarray(series)
    spec = DetectorSpec(
        "cusum",
        {
            "threshold": threshold,
            "drift": drift,
            "warmup": warmup,
            "reset_on_alarm": reset_on_alarm,
        },
    )
    assert_equivalent_steps(spec, arr)


@settings(max_examples=40, deadline=None)
@given(
    series=series_strategy(),
    warmup=st.integers(0, 12),
    alpha=st.floats(0.05, 1.0),
    beta=st.floats(0.0, 1.0),
    band=st.floats(0.5, 4.0),
)
def test_holt_winters_property(series, warmup, alpha, beta, band):
    arr = np.asarray(series)
    spec = DetectorSpec(
        "holt-winters",
        {"alpha": alpha, "beta": beta, "band": band, "warmup": warmup},
    )
    assert_equivalent_steps(spec, arr)


@settings(max_examples=40, deadline=None)
@given(
    series=series_strategy(),
    warmup=st.integers(0, 12),
    nsigma=st.floats(0.5, 5.0),
    gate=st.booleans(),
)
def test_kalman_property(series, warmup, nsigma, gate):
    arr = np.asarray(series)
    spec = DetectorSpec(
        "kalman", {"nsigma": nsigma, "warmup": warmup, "gate_updates": gate}
    )
    assert_equivalent_steps(spec, arr)


# ----------------------------------------------------------------------
# Heterogeneous per-device parameters vs individually built scalars
# ----------------------------------------------------------------------
class TestHeterogeneousParameters:
    def _compare_elementwise(self, bank, scalars, series):
        steps, n, d = series.shape
        for k in range(steps):
            got = bank.observe_batch(series[k])
            for i in range(n):
                for j in range(d):
                    want = scalars[i][j].update(float(series[k, i, j]))
                    assert bool(got.abnormal[i, j]) == want.abnormal, (k, i, j)
                    assert got.scores[i, j] == want.score, (k, i, j)
                    forecast = got.forecasts[i, j]
                    if want.forecast is None:
                        assert np.isnan(forecast), (k, i, j)
                    else:
                        assert forecast == want.forecast, (k, i, j)

    def test_ewma_heterogeneous(self):
        rng = np.random.default_rng(11)
        n, d, steps = 5, 2, 25
        alpha = rng.uniform(0.1, 0.9, (n, d))
        nsigma = rng.uniform(1.0, 3.0, (n, d))
        warmup = rng.integers(0, 6, (n, d))
        bank = DetectorSpec(
            "ewma", {"alpha": alpha, "nsigma": nsigma, "warmup": warmup}
        ).bank(n, d)
        scalars = [
            [
                EwmaDetector(
                    alpha=float(alpha[i, j]),
                    nsigma=float(nsigma[i, j]),
                    warmup=int(warmup[i, j]),
                )
                for j in range(d)
            ]
            for i in range(n)
        ]
        series = np.clip(rng.normal(0.6, 0.15, (steps, n, d)), 0, 1)
        self._compare_elementwise(bank, scalars, series)

    def test_shewhart_heterogeneous_windows(self):
        rng = np.random.default_rng(12)
        n, d, steps = 4, 2, 30
        window = rng.integers(2, 9, (n, d))
        nsigma = rng.uniform(1.0, 3.0, (n, d))
        bank = DetectorSpec(
            "shewhart", {"window": window, "nsigma": nsigma, "warmup": 2}
        ).bank(n, d)
        scalars = [
            [
                ShewhartDetector(
                    window=int(window[i, j]),
                    nsigma=float(nsigma[i, j]),
                    warmup=2,
                )
                for j in range(d)
            ]
            for i in range(n)
        ]
        series = np.clip(rng.normal(0.6, 0.12, (steps, n, d)), 0, 1)
        self._compare_elementwise(bank, scalars, series)

    def test_cusum_heterogeneous_warmup_and_mu(self):
        rng = np.random.default_rng(13)
        n, d, steps = 4, 2, 25
        warmup = rng.integers(0, 8, (n, d))
        # Half the elements learn mu, half run a fixed reference level.
        mu = np.where(rng.random((n, d)) < 0.5, np.nan, 0.6)
        bank = DetectorSpec(
            "cusum",
            {"threshold": 0.08, "drift": 0.004, "warmup": warmup, "mu": mu},
        ).bank(n, d)
        scalars = [
            [
                CusumDetector(
                    threshold=0.08,
                    drift=0.004,
                    warmup=int(warmup[i, j]),
                    mu=None if np.isnan(mu[i, j]) else float(mu[i, j]),
                )
                for j in range(d)
            ]
            for i in range(n)
        ]
        series = np.clip(rng.normal(0.6, 0.1, (steps, n, d)), 0, 1)
        self._compare_elementwise(bank, scalars, series)


# ----------------------------------------------------------------------
# Registry, spec and validation plumbing
# ----------------------------------------------------------------------
class TestSpecAndRegistry:
    def test_resolve_plane(self):
        assert resolve_plane(None) == "bank"
        assert resolve_plane("scalar") == "scalar"
        with pytest.raises(ConfigurationError):
            resolve_plane("gpu")

    def test_resolve_family(self):
        assert resolve_family(None) == "step"
        with pytest.raises(ConfigurationError):
            resolve_family("arima")

    def test_default_spec_matches_monitor_default(self):
        spec = default_detector_spec(0.03)
        assert spec.family == "step"
        assert spec.params["max_step"] == pytest.approx(0.12)
        # 4r capped at 1.
        assert default_detector_spec(0.5).params["max_step"] == 1.0

    def test_spec_replace(self):
        spec = SPECS["ewma"].replace(nsigma=9.0)
        assert spec.params["nsigma"] == 9.0
        assert spec.params["alpha"] == SPECS["ewma"].params["alpha"]

    def test_scalar_plane_is_scalar_bank(self):
        bank = SPECS["step"].bank(3, 2, plane="scalar")
        assert isinstance(bank, ScalarDetectorBank)

    def test_as_bank_shape_checked(self):
        bank = SPECS["step"].bank(3, 2)
        assert as_bank(bank, 3, 2) is bank
        with pytest.raises(DimensionMismatchError):
            as_bank(bank, 4, 2)
        with pytest.raises(ConfigurationError):
            as_bank(object(), 3, 2)  # type: ignore[arg-type]

    def test_bank_shape_validation(self):
        bank = SPECS["step"].bank(3, 2)
        with pytest.raises(DimensionMismatchError):
            bank.observe_batch(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            SPECS["step"].bank(0, 2)
        with pytest.raises(ConfigurationError):
            SPECS["step"].bank(3, 2, min_abnormal_services=5)

    def test_array_params_on_scalar_plane_rejected_cleanly(self):
        spec = DetectorSpec("step", {"max_step": np.full((2, 2), 0.1)})
        assert spec.bank(2, 2).shape == (2, 2)  # fine on the bank plane
        with pytest.raises(ConfigurationError):
            spec.bank(2, 2, plane="scalar")

    def test_missing_required_params_fail_identically_on_both_planes(self):
        # step/band have no safe default; a spec missing them must fail
        # as a ConfigurationError on *both* planes, not a raw TypeError
        # on one of them.
        for family in ("step", "band"):
            for plane in PLANES:
                with pytest.raises(ConfigurationError):
                    DetectorSpec(family).bank(2, 2, plane=plane)

    def test_elementwise_constructor_validation(self):
        bad_alpha = np.array([[0.5, 1.5]])
        with pytest.raises(ConfigurationError):
            DetectorSpec("ewma", {"alpha": bad_alpha}).bank(1, 2)
        with pytest.raises(ConfigurationError):
            DetectorSpec("step", {"max_step": 0.0}).bank(2, 2)
        with pytest.raises(ConfigurationError):
            DetectorSpec("band", {"low": 0.9, "high": 0.8}).bank(2, 2)

    def test_bank_detection_helpers(self):
        bank = SPECS["step"].bank(3, 2)
        bank.observe_batch(np.full((3, 2), 0.8))
        bank.observe_batch(np.full((3, 2), 0.8))  # past warmup=2
        snapshot = np.full((3, 2), 0.8)
        snapshot[1, 0] = 0.2
        detection = bank.observe_batch(snapshot)
        assert detection.flagged_devices() == [1]
        assert detection.abnormal_services(1) == (0,)
        assert detection.max_scores.shape == (3,)
        assert detection.max_scores[1] > 1.0
