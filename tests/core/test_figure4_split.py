"""Figure 4-style tests: the J_k(j) / L_k(j) neighbourhood split.

The paper's Figure 4 illustrates splitting ``D_k(j)`` into devices whose
*every* maximal dense motion contains ``j`` (``J_k(j)``) and those owning
a dense motion avoiding ``j`` (``L_k(j)``), with ``tau = 2``.  These
tests build the same structures on a three-motion chain and verify the
split and its downstream consequences (Theorem 6 vs Corollary 8).
"""

from __future__ import annotations

from repro.core.characterize import Characterizer
from repro.core.motions import all_maximal_motions
from repro.core.neighborhood import MotionCache, split_neighborhood
from repro.core.types import AnomalyType, DecisionRule
from tests.conftest import make_transition_1d

# Five devices in a chain; 2r = 0.06, spacing 0.03, tau = 2:
# maximal dense motions {0,1,2}, {1,2,3}, {2,3,4}.
CHAIN = [(0.30, 0.30), (0.33, 0.33), (0.36, 0.36), (0.39, 0.39), (0.42, 0.42)]
R, TAU = 0.03, 2


def chain_transition():
    return make_transition_1d(CHAIN, r=R, tau=TAU)


class TestChainMotions:
    def test_three_maximal_dense_motions(self):
        t = chain_transition()
        motions = sorted(tuple(sorted(m)) for m in all_maximal_motions(t))
        assert motions == [(0, 1, 2), (1, 2, 3), (2, 3, 4)]


class TestCenterDevice:
    """Device 2 sits in every motion: D = J, L empty (Figure 4a shape)."""

    def test_split(self):
        t = chain_transition()
        split = split_neighborhood(MotionCache(t), 2)
        assert split.always_with_j == frozenset({0, 1, 2, 3, 4})
        assert split.sometimes_without_j == frozenset()

    def test_theorem6_decides_massive(self):
        t = chain_transition()
        verdict = Characterizer(t).characterize(2)
        assert verdict.anomaly_type is AnomalyType.MASSIVE
        assert verdict.rule is DecisionRule.THEOREM_6


class TestEdgeDevice:
    """Device 0's neighbours own motions avoiding it (Figure 4b shape)."""

    def test_split(self):
        t = chain_transition()
        split = split_neighborhood(MotionCache(t), 0)
        assert split.dense_neighborhood == frozenset({0, 1, 2})
        assert split.always_with_j == frozenset({0})
        assert split.sometimes_without_j == frozenset({1, 2})

    def test_corollary8_unresolved(self):
        # The competing motion {1,2,3} can absorb 0's partners, leaving 0
        # alone: an admissible partition with |P(0)| <= tau exists, and
        # another with 0 inside a dense block; device 0 is unresolved.
        t = chain_transition()
        verdict = Characterizer(t).characterize(0)
        assert verdict.anomaly_type is AnomalyType.UNRESOLVED
        assert verdict.rule is DecisionRule.COROLLARY_8
        assert verdict.witness is not None

    def test_oracle_agrees_on_whole_chain(self):
        from repro.core.oracle import oracle_classify

        t = chain_transition()
        local = Characterizer(t).characterize_all()
        oracle = oracle_classify(t)
        for device in t.flagged_sorted:
            assert local[device].anomaly_type is oracle.type_of(device)


class TestSplitAsymmetry:
    def test_l_membership_is_not_symmetric(self):
        """1 in L(0) (it owns {1,2,3} avoiding 0) but 0 not in D(1)'s L:
        0's only dense motion {0,1,2} contains 1."""
        t = chain_transition()
        cache = MotionCache(t)
        split0 = split_neighborhood(cache, 0)
        split1 = split_neighborhood(cache, 1)
        assert 1 in split0.sometimes_without_j
        assert 0 in split1.always_with_j
