"""Unit tests for :mod:`repro.core.transition`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.core.transition import Snapshot, Transition
from tests.conftest import make_transition_1d


class TestSnapshot:
    def test_shape_accessors(self):
        snap = Snapshot(np.zeros((5, 3)))
        assert snap.n == 5
        assert snap.dim == 3

    def test_position_lookup(self):
        snap = Snapshot(np.array([[0.1, 0.2], [0.3, 0.4]]))
        assert snap.position(1).tolist() == [0.3, 0.4]

    def test_position_out_of_range(self):
        snap = Snapshot(np.zeros((2, 2)))
        with pytest.raises(UnknownDeviceError):
            snap.position(2)

    def test_rejects_out_of_cube(self):
        with pytest.raises(ConfigurationError):
            Snapshot(np.array([[1.5, 0.0]]))

    def test_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            Snapshot(np.array([0.1, 0.2]))


class TestTransitionConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Transition(
                Snapshot(np.zeros((3, 2))), Snapshot(np.zeros((4, 2))), [0], 0.03, 1
            )

    @pytest.mark.parametrize("tau", [0, -1, 10, 2.5])
    def test_bad_tau(self, tau):
        with pytest.raises(ConfigurationError):
            Transition(
                Snapshot(np.zeros((5, 2))), Snapshot(np.zeros((5, 2))), [0], 0.03, tau
            )

    def test_bad_radius(self):
        with pytest.raises(ConfigurationError):
            Transition(
                Snapshot(np.zeros((5, 2))), Snapshot(np.zeros((5, 2))), [0], 0.3, 2
            )

    def test_unknown_flagged_device(self):
        with pytest.raises(UnknownDeviceError):
            Transition(
                Snapshot(np.zeros((3, 2))), Snapshot(np.zeros((3, 2))), [5], 0.03, 1
            )

    def test_combined_embedding_shape(self):
        t = Transition.from_arrays(
            np.zeros((4, 2)), np.ones((4, 2)) * 0.5, [0, 1], 0.03, 2
        )
        assert t.combined.shape == (4, 4)
        assert t.dim == 2
        assert t.n == 4

    def test_from_trajectories_rejects_bad_shape(self):
        with pytest.raises(DimensionMismatchError):
            Transition.from_trajectories_1d([(0.1, 0.2, 0.3)], r=0.03, tau=1)


class TestNeighborhood:
    def test_neighborhood_contains_self(self):
        t = make_transition_1d([(0.5, 0.5), (0.52, 0.52), (0.9, 0.9)], r=0.05, tau=1)
        assert 0 in t.neighborhood(0)

    def test_neighborhood_requires_both_times(self):
        # Device 1 is near device 0 at k-1 but far at k: not a neighbour.
        t = make_transition_1d([(0.5, 0.5), (0.52, 0.9)], r=0.05, tau=1)
        assert t.neighborhood(0) == (0,)

    def test_neighborhood_radius_2r(self):
        # Exactly 2r away at both times: inside N(j).
        t = make_transition_1d([(0.5, 0.5), (0.6, 0.6)], r=0.05, tau=1)
        assert t.neighborhood(0) == (0, 1)

    def test_neighborhood_excludes_unflagged(self):
        t = make_transition_1d(
            [(0.5, 0.5), (0.51, 0.51), (0.52, 0.52)], r=0.05, tau=1, flagged=[0, 2]
        )
        assert t.neighborhood(0) == (0, 2)

    def test_neighborhood_of_unflagged_device_rejected(self):
        t = make_transition_1d([(0.5, 0.5), (0.6, 0.6)], r=0.05, tau=1, flagged=[0])
        with pytest.raises(UnknownDeviceError):
            t.neighborhood(1)

    def test_knowledge_ball_is_superset(self):
        pairs = [(0.5, 0.5), (0.58, 0.58), (0.66, 0.66), (0.9, 0.9)]
        t = make_transition_1d(pairs, r=0.05, tau=1)
        n2 = set(t.neighborhood(0))
        n4 = set(t.knowledge_ball(0))
        assert n2 <= n4
        assert 2 in n4 and 2 not in n2

    def test_neighborhood_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        prev = rng.random((60, 2))
        cur = rng.random((60, 2))
        t = Transition.from_arrays(prev, cur, range(60), 0.04, 3)
        for j in [0, 17, 42]:
            expected = tuple(
                sorted(
                    i
                    for i in range(60)
                    if np.max(np.abs(prev[i] - prev[j])) <= 2 * 0.04 + 1e-12
                    and np.max(np.abs(cur[i] - cur[j])) <= 2 * 0.04 + 1e-12
                )
            )
            assert t.neighborhood(j) == expected


class TestConsistencyPredicates:
    def test_singleton_and_empty_consistent(self):
        t = make_transition_1d([(0.1, 0.1), (0.9, 0.9)], r=0.03, tau=1)
        assert t.is_consistent_motion([])
        assert t.is_consistent_motion([0])

    def test_motion_requires_both_times(self):
        # Close at k-1, far at k.
        t = make_transition_1d([(0.5, 0.1), (0.52, 0.9)], r=0.05, tau=1)
        assert not t.is_consistent_motion([0, 1])

    def test_dense_predicates(self):
        t = make_transition_1d([(0.5, 0.5)] * 5, r=0.05, tau=3)
        assert not t.is_dense([0, 1, 2])
        assert t.is_dense([0, 1, 2, 3])
        assert t.is_dense_motion([0, 1, 2, 3])

    def test_dense_motion_needs_consistency(self):
        pairs = [(0.1, 0.1), (0.1, 0.1), (0.1, 0.1), (0.9, 0.9)]
        t = make_transition_1d(pairs, r=0.03, tau=2)
        assert not t.is_dense_motion([0, 1, 2, 3])


class TestIndexReuse:
    """Consecutive transitions can share prebuilt grid indexes."""

    def make_pair(self, seed=0, n=40, r=0.04):
        rng = np.random.default_rng(seed)
        s0, s1, s2 = (rng.random((n, 2)) * 0.9 for _ in range(3))
        flagged = list(range(0, n, 3))
        first = Transition(Snapshot(s0), Snapshot(s1), flagged, r, 2)
        return first, s1, s2, flagged, r

    def test_cur_index_adopted_as_next_prev(self):
        first, s1, s2, flagged, r = self.make_pair()
        second = Transition(
            Snapshot(s1), Snapshot(s2), flagged, r, 2,
            index_prev=first.cur_index,
        )
        assert second.prev_index is first.cur_index

    def test_reused_index_answers_identically(self):
        first, s1, s2, flagged, r = self.make_pair(seed=5)
        reused = Transition(
            Snapshot(s1), Snapshot(s2), flagged, r, 2,
            index_prev=first.cur_index,
        )
        fresh = Transition(Snapshot(s1), Snapshot(s2), flagged, r, 2)
        for j in flagged:
            assert reused.neighborhood(j) == fresh.neighborhood(j)
            assert reused.knowledge_ball(j) == fresh.knowledge_ball(j)
        assert reused.neighborhoods_batch() == fresh.neighborhoods_batch()

    def test_both_sides_accept_prebuilt_indexes(self):
        first, s1, s2, flagged, r = self.make_pair()
        fresh = Transition(Snapshot(s1), Snapshot(s2), flagged, r, 2)
        adopted = Transition(
            Snapshot(s1), Snapshot(s2), flagged, r, 2,
            index_prev=fresh.prev_index, index_cur=fresh.cur_index,
        )
        assert adopted.prev_index is fresh.prev_index
        assert adopted.cur_index is fresh.cur_index

    def test_wrong_flagged_set_rejected(self):
        first, s1, s2, flagged, r = self.make_pair()
        with pytest.raises(ConfigurationError):
            Transition(
                Snapshot(s1), Snapshot(s2), flagged[:-1], r, 2,
                index_prev=first.cur_index,
            )

    def test_wrong_snapshot_rejected(self):
        first, s1, s2, flagged, r = self.make_pair()
        # first.prev_index indexes s0 positions, not s1's.
        with pytest.raises(ConfigurationError):
            Transition(
                Snapshot(s1), Snapshot(s2), flagged, r, 2,
                index_prev=first.prev_index,
            )

    def test_wrong_cell_rejected(self):
        from repro.core.geometry import GridIndex

        first, s1, s2, flagged, r = self.make_pair()
        bad = GridIndex(s1[flagged], 0.5)
        with pytest.raises(ConfigurationError):
            Transition(
                Snapshot(s1), Snapshot(s2), flagged, r, 2, index_prev=bad
            )
