"""Coverage for the small core value types and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core import errors as err
from repro.core.types import (
    AnomalyType,
    Characterization,
    CostCounters,
    DecisionRule,
    MotionFamily,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            err.ConfigurationError,
            err.DimensionMismatchError,
            err.UnknownDeviceError,
            err.PartitionError,
            err.SearchBudgetExceeded,
            err.TraceFormatError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, err.ReproError)
        with pytest.raises(err.ReproError):
            raise cls("boom")

    def test_repro_error_not_bare_exception_catchall(self):
        # Library errors must be distinguishable from programming errors.
        assert not issubclass(KeyError, err.ReproError)


class TestCharacterizationProperties:
    def make(self, anomaly):
        return Characterization(
            device=3, anomaly_type=anomaly, rule=DecisionRule.THEOREM_5
        )

    def test_type_predicates_are_exclusive(self):
        for anomaly in AnomalyType:
            verdict = self.make(anomaly)
            flags = [verdict.is_isolated, verdict.is_massive, verdict.is_unresolved]
            assert sum(flags) == 1

    def test_frozen(self):
        verdict = self.make(AnomalyType.ISOLATED)
        with pytest.raises(AttributeError):
            verdict.device = 9  # type: ignore[misc]

    def test_string_forms(self):
        assert str(AnomalyType.MASSIVE) == "massive"
        assert str(DecisionRule.COROLLARY_8) == "corollary-8"


class TestCostCounters:
    def test_defaults_zero(self):
        cost = CostCounters()
        assert cost.maximal_motions == 0
        assert cost.total_collections is None

    def test_merge_handles_missing_totals(self):
        a = CostCounters(total_collections=None)
        b = CostCounters(total_collections=None)
        a.merge(b)
        assert a.total_collections is None
        c = CostCounters(total_collections=5)
        a.merge(c)
        assert a.total_collections == 5

    def test_as_dict_keys_stable(self):
        keys = set(CostCounters().as_dict())
        assert keys == {
            "maximal_motions",
            "dense_motions",
            "neighbor_expansions",
            "tested_collections",
            "total_collections",
            "window_steps",
        }


class TestMotionFamily:
    def test_neighborhood_is_union_of_dense(self):
        fam = MotionFamily(
            device=0,
            motions=(frozenset({0, 1}), frozenset({0, 2, 3, 4})),
            dense=(frozenset({0, 2, 3, 4}),),
        )
        assert fam.neighborhood == frozenset({0, 2, 3, 4})
        assert fam.has_dense_motion

    def test_empty_dense_family(self):
        fam = MotionFamily(device=0, motions=(frozenset({0}),), dense=())
        assert fam.neighborhood == frozenset()
        assert not fam.has_dense_motion
