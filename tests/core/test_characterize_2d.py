"""Second battery of characterization tests: two-service QoS space.

The paper's evaluation uses ``d = 2`` (combined motion space of four
dimensions).  Everything proved for ``d = 1`` must carry over; these
tests re-run the oracle cross-check and the structural properties on
random two-dimensional configurations, plus exercise the budget and
fallback machinery.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterize import Characterizer, classify_sets
from repro.core.errors import SearchBudgetExceeded
from repro.core.motions import (
    brute_force_maximal_motions,
    enumerate_maximal_motions,
)
from repro.core.oracle import oracle_classify
from repro.core.partition import greedy_partition, massive_isolated_split
from repro.core.transition import Transition
from repro.core.types import AnomalyType, DecisionRule


def _random_transition_2d(seed: int) -> Transition:
    """Random clustered two-service configuration (small, oracle-friendly)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    tau = int(rng.integers(1, n))
    r = float(rng.uniform(0.03, 0.15))
    prev = np.empty((n, 2))
    cur = np.empty((n, 2))
    for i in range(n):
        if i and rng.random() < 0.6:
            j = int(rng.integers(i))
            prev[i] = prev[j] + rng.uniform(-2.2 * r, 2.2 * r, 2)
            cur[i] = cur[j] + rng.uniform(-2.2 * r, 2.2 * r, 2)
        else:
            prev[i] = rng.random(2)
            cur[i] = rng.random(2)
    prev = np.clip(prev, 0, 1)
    cur = np.clip(cur, 0, 1)
    return Transition.from_arrays(prev, cur, range(n), r, tau)


class TestOracleCrosscheck2D:
    @pytest.mark.parametrize("seed", range(25))
    def test_local_equals_oracle(self, seed):
        t = _random_transition_2d(seed)
        local = Characterizer(t).characterize_all()
        oracle = oracle_classify(t)
        for device in t.flagged_sorted:
            assert local[device].anomaly_type is oracle.type_of(device), (
                f"seed={seed} device={device}"
            )

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_local_equals_oracle_fuzz(self, seed):
        t = _random_transition_2d(seed)
        local = Characterizer(t).characterize_all()
        oracle = oracle_classify(t)
        for device in t.flagged_sorted:
            assert local[device].anomaly_type is oracle.type_of(device)

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_motion_enumerator_2d_fuzz(self, seed):
        t = _random_transition_2d(seed)
        fast, _ = enumerate_maximal_motions(t, range(t.n))
        slow = brute_force_maximal_motions(t, range(t.n))
        assert sorted(map(sorted, fast)) == sorted(map(sorted, slow))


class TestGreedyContainment:
    """Relations M_k ⊆ M_P and I_k ⊆ I_P for the greedy partition P."""

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_certain_sets_contained_in_greedy_split(self, seed):
        t = _random_transition_2d(seed)
        isolated, massive, _ = classify_sets(Characterizer(t).characterize_all())
        partition = greedy_partition(t, random.Random(seed))
        dense, sparse = massive_isolated_split(partition, t.tau)
        assert massive <= dense
        assert isolated <= sparse


class TestBudgets:
    def _unresolved_config(self) -> Transition:
        # Figure 3-like chain in 2-D: two overlapping dense motions.
        prev = np.array(
            [[0.30, 0.30], [0.32, 0.32], [0.35, 0.35], [0.38, 0.38], [0.42, 0.42]]
        )
        return Transition.from_arrays(prev, prev.copy(), range(5), 0.05, 3)

    def test_budget_raises_without_fallback(self):
        t = self._unresolved_config()
        with pytest.raises(SearchBudgetExceeded):
            Characterizer(t, collection_budget=0).characterize(0)

    def test_budget_fallback_degrades_to_unresolved(self):
        t = self._unresolved_config()
        verdict = Characterizer(
            t, collection_budget=0, budget_fallback=True
        ).characterize(0)
        assert verdict.anomaly_type is AnomalyType.UNRESOLVED
        assert verdict.rule is DecisionRule.ALGORITHM_3

    def test_fallback_never_affects_cheap_verdicts(self):
        t = self._unresolved_config()
        strict = Characterizer(t).characterize_all()
        fallback = Characterizer(
            t, collection_budget=0, budget_fallback=True
        ).characterize_all()
        for device in t.flagged_sorted:
            if strict[device].rule in (DecisionRule.THEOREM_5, DecisionRule.THEOREM_6):
                assert fallback[device].anomaly_type is strict[device].anomaly_type

    def test_pool_cap_raises(self):
        t = self._unresolved_config()
        with pytest.raises(SearchBudgetExceeded):
            Characterizer(t, pool_cap=1).characterize(0)

    def test_generous_budget_matches_unbudgeted(self):
        t = self._unresolved_config()
        unbudgeted = Characterizer(t).characterize_all()
        budgeted = Characterizer(
            t, collection_budget=10**6, budget_fallback=True
        ).characterize_all()
        assert {j: v.anomaly_type for j, v in unbudgeted.items()} == {
            j: v.anomaly_type for j, v in budgeted.items()
        }


class TestHigherDimensions:
    def test_three_service_blob(self):
        """d = 3: one co-moving blob and one straggler."""
        rng = np.random.default_rng(5)
        prev = np.clip(rng.normal(0.8, 0.005, (7, 3)), 0, 1)
        cur = prev.copy()
        cur[:5] = np.clip(cur[:5] - 0.4, 0, 1)
        cur[5] = [0.1, 0.9, 0.5]
        cur[6] = [0.9, 0.1, 0.2]
        t = Transition.from_arrays(prev, cur, range(7), 0.03, 3)
        isolated, massive, unresolved = classify_sets(
            Characterizer(t).characterize_all()
        )
        assert massive == frozenset(range(5))
        assert isolated == frozenset({5, 6})
        assert not unresolved

    def test_dimension_mismatch_between_motion_and_space(self):
        """A group consistent in one service but split in another is not
        a motion: per-dimension boxes must all be satisfied."""
        prev = np.array([[0.5, 0.5], [0.51, 0.51], [0.52, 0.52], [0.53, 0.53]])
        cur = prev.copy()
        cur[:, 0] -= 0.3          # all move together on service 0
        cur[3, 1] = 0.9           # device 3 diverges on service 1
        cur = np.clip(cur, 0, 1)
        t = Transition.from_arrays(prev, cur, range(4), 0.03, 2)
        isolated, massive, unresolved = classify_sets(
            Characterizer(t).characterize_all()
        )
        assert massive == frozenset({0, 1, 2})
        assert isolated == frozenset({3})
