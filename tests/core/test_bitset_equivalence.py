"""Mask-kernel ↔ frozenset-kernel equivalence (randomized + property-based).

The bitset verdict kernel must be *observationally identical* to the
frozenset baseline: same verdicts, same decision rules, same witnesses,
same cost counters (window steps, tested collections, neighbour
expansions), same motion families and the same ``NeighborhoodSplit`` —
including the Theorem 7 budget path, where both kernels must blow the
same budget.  These tests enforce that on seeded randomized transitions
and, when Hypothesis is available, on property-generated ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitset import LocalUniverse, iter_bits, popcount, resolve_kernel
from repro.core.characterize import Characterizer
from repro.core.errors import SearchBudgetExceeded
from repro.core.motions import (
    brute_force_maximal_motions,
    enumerate_maximal_motions,
    motion_family,
)
from repro.core.neighborhood import MotionCache, split_neighborhood
from repro.core.transition import Snapshot, Transition
from repro.core.types import AnomalyType, DecisionRule


def random_transition(rng, *, max_n=16, cluster=True):
    """A seeded random transition with an optional coherent cluster."""
    n = int(rng.integers(4, max_n + 1))
    d = int(rng.integers(1, 3))
    r = float(rng.uniform(0.02, 0.15))
    tau = int(rng.integers(1, max(2, n // 2)))
    prev = np.clip(rng.random((n, d)) * 0.5 + 0.2, 0.0, 1.0)
    k = int(rng.integers(0, n // 2 + 1)) if cluster else 0
    if k:
        center = rng.random(d) * 0.5 + 0.2
        prev[:k] = np.clip(center + rng.normal(0, r / 3, (k, d)), 0.0, 1.0)
    cur = np.clip(prev + rng.normal(0, r / 2, (n, d)), 0.0, 1.0)
    return Transition(Snapshot(prev), Snapshot(cur), range(n), r, tau)


def rebuild(transition):
    """A fresh, cache-free copy of the same transition."""
    return Transition(
        Snapshot(transition.previous.positions.copy()),
        Snapshot(transition.current.positions.copy()),
        transition.flagged,
        transition.r,
        transition.tau,
    )


class TestLocalUniverse:
    def test_roundtrip_and_determinism(self):
        uni = LocalUniverse([3, 7, 11])
        mask = uni.mask_of({11, 3})
        assert uni.devices_of(mask) == frozenset({3, 11})
        assert popcount(mask) == 2
        # Unseen ids register in sorted order regardless of input order.
        a = LocalUniverse()
        b = LocalUniverse()
        assert a.mask_of([9, 2, 5]) == b.mask_of([5, 9, 2])
        assert a.devices == b.devices == (2, 5, 9)

    def test_widens_past_64_devices(self):
        uni = LocalUniverse(range(0, 200, 2))
        assert len(uni) == 100
        mask = uni.mask_of(range(0, 200, 2))
        assert popcount(mask) == 100
        assert mask.bit_length() == 100  # multi-word int, all identities hold
        assert uni.devices_of(mask) == frozenset(range(0, 200, 2))
        # Masks minted before a widening stay valid after it.
        early = uni.mask_of([0, 2])
        uni.bit(999)
        assert uni.devices_of(early) == frozenset({0, 2})

    def test_iter_bits(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(0)) == []

    def test_resolve_kernel(self):
        assert resolve_kernel(None) == "bitset"
        assert resolve_kernel("frozenset") == "frozenset"
        with pytest.raises(ValueError):
            resolve_kernel("roaring")


class TestEnumeratorEquivalence:
    def test_randomized_motions_and_steps(self):
        rng = np.random.default_rng(11)
        for _ in range(120):
            t = random_transition(rng, max_n=12)
            n = t.n
            anchor = int(rng.integers(0, n)) if rng.random() < 0.5 else None
            fast, steps_fast = enumerate_maximal_motions(
                t, range(n), anchor, kernel="bitset"
            )
            slow, steps_slow = enumerate_maximal_motions(
                t, range(n), anchor, kernel="frozenset"
            )
            assert fast == slow
            assert steps_fast == steps_slow
            brute = brute_force_maximal_motions(t, range(n), anchor)
            assert sorted(map(sorted, fast)) == sorted(map(sorted, brute))

    def test_families_identical(self):
        rng = np.random.default_rng(23)
        for _ in range(40):
            t = random_transition(rng)
            for j in t.flagged_sorted:
                fam_a = motion_family(t, j, kernel="bitset")
                fam_b = motion_family(t, j, kernel="frozenset")
                assert fam_a == fam_b


class TestCharacterizerEquivalence:
    def _assert_identical(self, got, want):
        assert got.anomaly_type == want.anomaly_type
        assert got.rule == want.rule
        assert got.witness == want.witness
        assert got.cost.as_dict() == want.cost.as_dict()

    def test_randomized_verdicts_costs_witnesses(self):
        rng = np.random.default_rng(42)
        rules_seen = set()
        for _ in range(120):
            t = random_transition(rng)
            t2 = rebuild(t)
            fast = Characterizer(t, kernel="bitset").characterize_all()
            slow = Characterizer(t2, kernel="frozenset").characterize_all()
            assert fast.keys() == slow.keys()
            for j in fast:
                self._assert_identical(fast[j], slow[j])
                rules_seen.add(fast[j].rule)
        # The sweep must actually exercise the interesting paths.
        assert DecisionRule.THEOREM_5 in rules_seen
        assert DecisionRule.THEOREM_6 in rules_seen
        assert COROLLARY_OR_T7 & rules_seen

    def test_split_neighborhood_identical(self):
        rng = np.random.default_rng(5)
        for _ in range(40):
            t = random_transition(rng)
            t2 = rebuild(t)
            cache_a = MotionCache(t, kernel="bitset")
            cache_b = MotionCache(t2, kernel="frozenset")
            for j in t.flagged_sorted:
                dense_a = cache_a.family(j).has_dense_motion
                dense_b = cache_b.family(j).has_dense_motion
                assert dense_a == dense_b
                if not dense_a:
                    continue
                sa = split_neighborhood(cache_a, j)
                sb = split_neighborhood(cache_b, j)
                assert sa == sb
            assert cache_a.expansions == cache_b.expansions

    def test_budget_path_identical(self):
        """Both kernels blow the same Theorem 7 budget, then both fall back."""
        rng = np.random.default_rng(9)
        blob_prev = np.clip(0.5 + rng.normal(0, 0.005, (12, 2)), 0, 1)
        blob_cur = np.clip(blob_prev + rng.normal(0, 0.005, (12, 2)), 0, 1)
        # A second blob overlapping the first at 2r keeps Theorem 6
        # inconclusive, forcing the expensive search.
        blob_prev[6:] += 0.04
        blob_cur[6:] += 0.045
        kwargs = dict(collection_budget=3, pool_cap=None)
        errors = {}
        for kernel in ("bitset", "frozenset"):
            t = Transition(
                Snapshot(blob_prev), Snapshot(blob_cur), range(12), 0.03, 2
            )
            blown = []
            chars = Characterizer(t, kernel=kernel, **kwargs)
            for j in t.flagged_sorted:
                try:
                    chars.characterize(j)
                except SearchBudgetExceeded:
                    blown.append(j)
            errors[kernel] = blown
        assert errors["bitset"] == errors["frozenset"]
        assert errors["bitset"], "scenario must actually exceed the budget"
        # budget_fallback resolves the same devices to ALGORITHM_3.
        for kernel in ("bitset", "frozenset"):
            t = Transition(
                Snapshot(blob_prev), Snapshot(blob_cur), range(12), 0.03, 2
            )
            chars = Characterizer(
                t, kernel=kernel, budget_fallback=True, **kwargs
            )
            results = chars.characterize_all()
            for j in errors["bitset"]:
                assert results[j].anomaly_type is AnomalyType.UNRESOLVED
                assert results[j].rule is DecisionRule.ALGORITHM_3

    def test_pool_cap_identical(self):
        """The per-motion 2^m pool guard fires identically on both kernels."""
        rng = np.random.default_rng(13)
        prev = np.clip(0.5 + rng.normal(0, 0.005, (12, 2)), 0, 1)
        cur = np.clip(prev + rng.normal(0, 0.005, (12, 2)), 0, 1)
        prev[6:] += 0.04  # overlapping second blob: Theorem 6 inconclusive
        cur[6:] += 0.045
        blown = {}
        for kernel in ("bitset", "frozenset"):
            t = Transition(Snapshot(prev), Snapshot(cur), range(12), 0.03, 2)
            chars = Characterizer(t, kernel=kernel, pool_cap=8)
            devices = []
            for j in t.flagged_sorted:
                try:
                    chars.characterize(j)
                except SearchBudgetExceeded:
                    devices.append(j)
            blown[kernel] = devices
        assert blown["bitset"] == blown["frozenset"]
        assert blown["bitset"], "scenario must actually exceed the pool cap"


COROLLARY_OR_T7 = {DecisionRule.THEOREM_7, DecisionRule.COROLLARY_8}


# ----------------------------------------------------------------------
# Hypothesis property tests (skipped when the library is unavailable).
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def transitions(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    d = draw(st.integers(min_value=1, max_value=2))
    coords = draw(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, width=32),
                min_size=2 * d,
                max_size=2 * d,
            ),
            min_size=n,
            max_size=n,
        )
    )
    arr = np.asarray(coords, dtype=float)
    r = draw(st.sampled_from([0.02, 0.05, 0.1, 0.2]))
    tau = draw(st.integers(min_value=1, max_value=max(1, n - 1)))
    return Transition(
        Snapshot(arr[:, :d]), Snapshot(arr[:, d:]), range(n), r, tau
    )


@settings(max_examples=60, deadline=None)
@given(transitions())
def test_property_kernels_agree(t):
    t2 = rebuild(t)
    fast = Characterizer(t, kernel="bitset").characterize_all()
    slow = Characterizer(t2, kernel="frozenset").characterize_all()
    assert fast.keys() == slow.keys()
    for j in fast:
        assert fast[j].anomaly_type == slow[j].anomaly_type
        assert fast[j].rule == slow[j].rule
        assert fast[j].witness == slow[j].witness
        assert fast[j].cost.as_dict() == slow[j].cost.as_dict()


@settings(max_examples=60, deadline=None)
@given(transitions())
def test_property_enumerator_matches_brute_force(t):
    n = t.n
    fast, _ = enumerate_maximal_motions(t, range(n), kernel="bitset")
    brute = brute_force_maximal_motions(t, range(n))
    assert sorted(map(sorted, fast)) == sorted(map(sorted, brute))
