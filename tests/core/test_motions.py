"""Tests for the Algorithm 2 motion enumerator (:mod:`repro.core.motions`)."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import UnknownDeviceError
from repro.core.motions import (
    all_maximal_motions,
    brute_force_maximal_motions,
    enumerate_maximal_motions,
    largest_motion_size,
    maximal_motions_containing,
    motion_family,
)
from repro.core.transition import Transition
from tests.conftest import (
    FIGURE3_PAIRS,
    FIGURE3_R,
    FIGURE3_TAU,
    make_transition_1d,
    random_clustered_pairs,
)


def canonical(motions):
    """Order-insensitive canonical form of a motion family."""
    return sorted(tuple(sorted(m)) for m in motions)


class TestBasicEnumeration:
    def test_empty_candidates(self):
        t = make_transition_1d([(0.5, 0.5)], r=0.05, tau=1)
        motions, steps = enumerate_maximal_motions(t, [])
        assert motions == []
        assert steps == 0

    def test_singleton(self):
        t = make_transition_1d([(0.5, 0.5)], r=0.05, tau=1)
        motions, _ = enumerate_maximal_motions(t, [0])
        assert canonical(motions) == [(0,)]

    def test_two_separate_points(self):
        t = make_transition_1d([(0.1, 0.1), (0.9, 0.9)], r=0.05, tau=1)
        motions, _ = enumerate_maximal_motions(t, [0, 1])
        assert canonical(motions) == [(0,), (1,)]

    def test_one_blob(self):
        t = make_transition_1d([(0.5, 0.5)] * 4, r=0.05, tau=1)
        motions, _ = enumerate_maximal_motions(t, range(4))
        assert canonical(motions) == [(0, 1, 2, 3)]

    def test_figure1_overlapping_maximal_sets(self):
        # Mirror of the paper's Figure 1 idea in motion form: device 0 sits
        # in two distinct maximal motions.
        pairs = [
            (0.30, 0.30),  # 0: shared
            (0.31, 0.31),  # 1: shared
            (0.25, 0.25),  # 2: left group
            (0.39, 0.39),  # 3: right group
        ]
        t = make_transition_1d(pairs, r=0.05, tau=1)
        motions, _ = enumerate_maximal_motions(t, range(4), anchor=0)
        assert canonical(motions) == [(0, 1, 2), (0, 1, 3)]

    def test_figure3_maximal_motions(self):
        t = make_transition_1d(FIGURE3_PAIRS, r=FIGURE3_R, tau=FIGURE3_TAU)
        motions = all_maximal_motions(t)
        assert canonical(motions) == [(0, 1, 2, 3), (1, 2, 3, 4)]

    def test_anchor_must_be_candidate(self):
        t = make_transition_1d([(0.5, 0.5), (0.6, 0.6)], r=0.05, tau=1)
        with pytest.raises(UnknownDeviceError):
            enumerate_maximal_motions(t, [0], anchor=1)

    def test_duplicate_candidates_ignored(self):
        t = make_transition_1d([(0.5, 0.5), (0.51, 0.51)], r=0.05, tau=1)
        motions, _ = enumerate_maximal_motions(t, [0, 0, 1, 1])
        assert canonical(motions) == [(0, 1)]


class TestMotionSemantics:
    def test_motion_requires_consistency_at_both_times(self):
        # 0 and 1 close at k-1 only; 0 and 2 close at both.
        pairs = [(0.50, 0.50), (0.52, 0.90), (0.53, 0.53)]
        t = make_transition_1d(pairs, r=0.05, tau=1)
        motions, _ = enumerate_maximal_motions(t, range(3), anchor=0)
        assert canonical(motions) == [(0, 2)]

    def test_all_returned_sets_are_consistent_motions(self):
        rng = random.Random(5)
        pairs = random_clustered_pairs(rng, 12, 0.05)
        t = make_transition_1d(pairs, r=0.05, tau=2)
        for motion in all_maximal_motions(t):
            assert t.is_consistent_motion(motion)

    def test_returned_sets_are_maximal(self):
        rng = random.Random(9)
        pairs = random_clustered_pairs(rng, 10, 0.06)
        t = make_transition_1d(pairs, r=0.06, tau=2)
        motions = all_maximal_motions(t)
        for motion in motions:
            for extra in t.flagged - motion:
                assert not t.is_consistent_motion(motion | {extra})

    def test_every_flagged_device_in_some_motion(self):
        rng = random.Random(11)
        pairs = random_clustered_pairs(rng, 15, 0.04)
        t = make_transition_1d(pairs, r=0.04, tau=2)
        covered = set()
        for motion in all_maximal_motions(t):
            covered |= motion
        assert covered == t.flagged

    def test_anchored_motions_all_contain_anchor(self):
        rng = random.Random(13)
        pairs = random_clustered_pairs(rng, 12, 0.05)
        t = make_transition_1d(pairs, r=0.05, tau=2)
        for j in range(12):
            motions, _ = maximal_motions_containing(t, j)
            assert motions, "every device belongs to at least its singleton motion"
            for motion in motions:
                assert j in motion


class TestBruteForceCrosscheck:
    @pytest.mark.parametrize("seed", range(12))
    def test_anchored_matches_bruteforce_1d(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 9)
        r = rng.uniform(0.02, 0.15)
        pairs = random_clustered_pairs(rng, n, r)
        t = make_transition_1d(pairs, r=r, tau=1)
        for j in range(n):
            fast, _ = enumerate_maximal_motions(t, range(n), anchor=j)
            slow = brute_force_maximal_motions(t, range(n), anchor=j)
            assert canonical(fast) == canonical(slow)

    @pytest.mark.parametrize("seed", range(8))
    def test_unanchored_matches_bruteforce_2d(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        r = float(rng.uniform(0.05, 0.2))
        prev = rng.random((n, 2))
        cur = np.clip(prev + rng.normal(0, 1.5 * r, (n, 2)), 0, 1)
        t = Transition.from_arrays(prev, cur, range(n), r, 1)
        fast, _ = enumerate_maximal_motions(t, range(n))
        slow = brute_force_maximal_motions(t, range(n))
        assert canonical(fast) == canonical(slow)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_fuzz(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 8)
        r = rng.uniform(0.02, 0.2)
        pairs = random_clustered_pairs(rng, n, r)
        t = make_transition_1d(pairs, r=r, tau=1)
        fast, _ = enumerate_maximal_motions(t, range(n))
        slow = brute_force_maximal_motions(t, range(n))
        assert canonical(fast) == canonical(slow)


class TestMotionFamily:
    def test_dense_filtering(self):
        pairs = [(0.5, 0.5)] * 4 + [(0.9, 0.9)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        fam = motion_family(t, 0)
        assert canonical(fam.motions) == [(0, 1, 2, 3)]
        assert canonical(fam.dense) == [(0, 1, 2, 3)]
        assert fam.has_dense_motion
        assert fam.neighborhood == frozenset({0, 1, 2, 3})

    def test_sparse_family(self):
        pairs = [(0.5, 0.5)] * 3 + [(0.9, 0.1)]
        t = make_transition_1d(pairs, r=0.03, tau=3, flagged=[0, 1, 2])
        fam = motion_family(t, 0)
        assert not fam.has_dense_motion
        assert fam.neighborhood == frozenset()

    def test_window_steps_counted(self):
        pairs = [(0.5, 0.5), (0.52, 0.52), (0.9, 0.9)]
        t = make_transition_1d(pairs, r=0.05, tau=1)
        fam = motion_family(t, 0)
        assert fam.window_steps >= 1


class TestLargestMotionSize:
    def test_empty(self):
        t = make_transition_1d([(0.5, 0.5)], r=0.05, tau=1)
        assert largest_motion_size(t, []) == 0

    def test_blob(self):
        t = make_transition_1d([(0.5, 0.5)] * 5 + [(0.9, 0.9)], r=0.05, tau=1)
        assert largest_motion_size(t, range(6)) == 5
