"""Scenario tests encoding the paper's worked examples verbatim.

Each class reproduces one figure or theorem-level claim of the paper on the
exact configuration (translated to zero-based ids and explicit
coordinates) and asserts the published conclusion.
"""

from __future__ import annotations

import random

from repro.core.characterize import Characterizer
from repro.core.motions import all_maximal_motions, maximal_motions_containing
from repro.core.oracle import oracle_classify
from repro.core.partition import (
    enumerate_anomaly_partitions,
    greedy_partition,
    is_anomaly_partition,
)
from repro.core.types import AnomalyType, DecisionRule
from tests.conftest import (
    FIGURE3_PAIRS,
    FIGURE3_R,
    FIGURE3_TAU,
    figure5_pairs,
    FIGURE5_R,
    FIGURE5_TAU,
    make_transition_1d,
)


def canonical(motions):
    return sorted(tuple(sorted(m)) for m in motions)


class TestFigure1MaximalConsistentSets:
    """Figure 1: a device belonging to two maximal r-consistent sets."""

    # One dimension, six devices; device 0 sits in two maximal sets
    # B1 = {0,1,2,3} and B2 = {0,1,2,4,5} (paper ids 1..6).
    PAIRS = [
        (0.50, 0.50),  # 0 (paper 1)
        (0.52, 0.52),  # 1 (paper 2)
        (0.54, 0.54),  # 2 (paper 3)
        (0.45, 0.45),  # 3 (paper 4): pulls the window left
        (0.58, 0.58),  # 4 (paper 5)
        (0.60, 0.60),  # 5 (paper 6): pulls the window right
    ]

    def test_two_maximal_sets_containing_device_0(self):
        t = make_transition_1d(self.PAIRS, r=0.05, tau=2)
        motions, _ = maximal_motions_containing(t, 0)
        assert canonical(motions) == [(0, 1, 2, 3), (0, 1, 2, 4, 5)]

    def test_subsets_are_consistent(self):
        t = make_transition_1d(self.PAIRS, r=0.05, tau=2)
        # "Any subset of B1 and any subset of B2 is an r-consistent set."
        assert t.is_consistent_motion({0, 3})
        assert t.is_consistent_motion({1, 2, 4})
        # But mixing the extremes of B1 and B2 is not.
        assert not t.is_consistent_motion({3, 5})


class TestFigure2PartitionNonUniqueness:
    """Figure 2 / Lemma 2: anomaly partitions are not unique."""

    # Ten devices, tau = 3.  A chain 0-1-2-3 of overlapping small motions,
    # a 5-device dense group, and a loner; mirrors the paper's C1..C4.
    PAIRS = (
        [(0.20, 0.20), (0.23, 0.23), (0.26, 0.26), (0.29, 0.29)]  # chain 0..3
        + [(0.60, 0.60)] * 5                                        # dense C3
        + [(0.90, 0.90)]                                            # loner
    )

    def test_multiple_admissible_partitions(self):
        t = make_transition_1d(self.PAIRS, r=0.03, tau=3)
        partitions = enumerate_anomaly_partitions(t)
        assert len(partitions) > 1

    def test_chain_can_break_either_way(self):
        t = make_transition_1d(self.PAIRS, r=0.03, tau=3)
        p_left = (
            frozenset({0, 1, 2}),
            frozenset({3}),
            frozenset({4, 5, 6, 7, 8}),
            frozenset({9}),
        )
        p_right = (
            frozenset({0}),
            frozenset({1, 2, 3}),
            frozenset({4, 5, 6, 7, 8}),
            frozenset({9}),
        )
        assert is_anomaly_partition(t, p_left)
        assert is_anomaly_partition(t, p_right)

    def test_greedy_seed_dependence(self):
        t = make_transition_1d(self.PAIRS, r=0.03, tau=3)
        outcomes = {
            frozenset(greedy_partition(t, random.Random(seed))) for seed in range(12)
        }
        assert len(outcomes) > 1


class TestFigure3AcpImpossibility:
    """Figure 3 / Theorem 3: the ACP cannot be solved."""

    def make(self):
        return make_transition_1d(FIGURE3_PAIRS, r=FIGURE3_R, tau=FIGURE3_TAU)

    def test_two_maximal_motions(self):
        t = self.make()
        assert canonical(all_maximal_motions(t)) == [(0, 1, 2, 3), (1, 2, 3, 4)]

    def test_exactly_two_anomaly_partitions(self):
        t = self.make()
        assert len(enumerate_anomaly_partitions(t)) == 2

    def test_unresolved_set_nonempty_so_acp_unsolvable(self):
        t = self.make()
        verdict = oracle_classify(t)
        assert verdict.unresolved == frozenset({0, 4})
        assert not verdict.acp_solvable

    def test_core_devices_massive_in_both_partitions(self):
        t = self.make()
        verdict = oracle_classify(t)
        assert verdict.massive == frozenset({1, 2, 3})
        assert verdict.isolated == frozenset()

    def test_local_conditions_match_omniscient_observer(self):
        t = self.make()
        local = Characterizer(t).characterize_all()
        verdict = oracle_classify(t)
        for device in t.flagged_sorted:
            assert local[device].anomaly_type is verdict.type_of(device)


class TestFigure5Theorem7Necessity:
    """Figure 5: Theorem 6 insufficient, Theorem 7 decides massive."""

    def make(self):
        return make_transition_1d(figure5_pairs(), r=FIGURE5_R, tau=FIGURE5_TAU)

    def test_four_maximal_dense_motions(self):
        t = self.make()
        motions = all_maximal_motions(t)
        assert canonical(motions) == [
            (0, 1, 2, 3),
            (0, 1, 6, 7),
            (2, 3, 4, 5),
            (4, 5, 6, 7),
        ]

    def test_exactly_two_partitions_both_all_dense(self):
        t = self.make()
        partitions = enumerate_anomaly_partitions(t)
        as_sets = {frozenset(p) for p in partitions}
        assert as_sets == {
            frozenset({frozenset({0, 1, 2, 3}), frozenset({4, 5, 6, 7})}),
            frozenset({frozenset({0, 1, 6, 7}), frozenset({2, 3, 4, 5})}),
        }

    def test_all_devices_massive_via_theorem7(self):
        t = self.make()
        results = Characterizer(t).characterize_all()
        for verdict in results.values():
            assert verdict.anomaly_type is AnomalyType.MASSIVE
            assert verdict.rule is DecisionRule.THEOREM_7

    def test_theorem6_alone_cannot_decide(self):
        t = self.make()
        results = Characterizer(t, full_nsc=False).characterize_all()
        assert all(v.anomaly_type is AnomalyType.UNRESOLVED for v in results.values())

    def test_oracle_agrees(self):
        t = self.make()
        verdict = oracle_classify(t)
        assert verdict.massive == t.flagged
        assert verdict.acp_solvable


class TestCorollary4:
    """Corollary 4: empty U_k implies ACP solvable."""

    def test_unambiguous_configuration(self, single_blob_transition):
        verdict = oracle_classify(single_blob_transition)
        assert not verdict.unresolved
        assert verdict.acp_solvable
        # And every admissible partition then yields the same M/I split.
        splits = set()
        for partition in verdict.partitions:
            dense = frozenset(
                x
                for block in partition
                if len(block) > single_blob_transition.tau
                for x in block
            )
            splits.add(dense)
        assert len(splits) == 1


class TestKnowledgeRadius:
    """Section V's locality claim: 4r knowledge suffices.

    Characterizing a device must not change when devices farther than 4r
    (at either time) are removed from the system entirely.
    """

    def test_far_devices_do_not_affect_verdict(self):
        rng = random.Random(77)
        from tests.conftest import random_clustered_pairs

        for trial in range(10):
            pairs = random_clustered_pairs(rng, 12, 0.04)
            t = make_transition_1d(pairs, r=0.04, tau=2)
            full = Characterizer(t).characterize_all()
            for device in range(12):
                ball = set(t.knowledge_ball(device))
                # Keep the 4r ball plus anything it can see transitively
                # within another 4r (safe over-approximation of the
                # knowledge the theorems use).
                keep = set(ball)
                for member in ball:
                    keep.update(t.knowledge_ball(member))
                keep_sorted = sorted(keep)
                remap = {old: new for new, old in enumerate(keep_sorted)}
                sub_pairs = [pairs[i] for i in keep_sorted]
                # Pad with far, unflagged dummies so tau stays in [1, n-1];
                # unflagged devices never join motions so they cannot
                # influence the verdict.
                flagged = list(range(len(sub_pairs)))
                while len(sub_pairs) < 4:
                    sub_pairs.append((0.99, 0.01))
                sub = make_transition_1d(sub_pairs, r=0.04, tau=2, flagged=flagged)
                verdict = Characterizer(sub).characterize(remap[device])
                assert verdict.anomaly_type is full[device].anomaly_type, (
                    f"trial {trial} device {device}"
                )
