"""Tests for the local characterization engine (Theorems 5–7, Cor. 8)."""

from __future__ import annotations

import random

import pytest

from repro.core.characterize import Characterizer, characterize_transition, classify_sets
from repro.core.errors import SearchBudgetExceeded, UnknownDeviceError
from repro.core.neighborhood import MotionCache, split_neighborhood
from repro.core.types import AnomalyType, DecisionRule
from tests.conftest import make_transition_1d, random_clustered_pairs


class TestTheorem5:
    def test_scattered_devices_all_isolated(self, scattered_transition):
        results = Characterizer(scattered_transition).characterize_all()
        for verdict in results.values():
            assert verdict.anomaly_type is AnomalyType.ISOLATED
            assert verdict.rule is DecisionRule.THEOREM_5

    def test_small_group_is_isolated(self):
        # Three coincident flagged devices with tau = 3: sparse, isolated.
        pairs = [(0.5, 0.5)] * 3 + [(0.9, 0.1)]
        t = make_transition_1d(pairs, r=0.03, tau=3, flagged=[0, 1, 2])
        results = characterize_transition(t)
        assert all(v.is_isolated for v in results.values())

    def test_divergent_trajectories_are_isolated(self):
        # Close at k-1 but scattering at k: no consistent motion, so even a
        # big group is isolated (the error did not move them consistently).
        pairs = [(0.5, 0.1 * i) for i in range(6)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        results = characterize_transition(t)
        assert all(v.is_isolated for v in results.values())


class TestTheorem6:
    def test_single_blob_massive(self, single_blob_transition):
        results = Characterizer(single_blob_transition).characterize_all()
        for verdict in results.values():
            assert verdict.anomaly_type is AnomalyType.MASSIVE
            assert verdict.rule is DecisionRule.THEOREM_6
            assert verdict.witness is not None

    def test_witness_is_dense_motion_inside_J(self, single_blob_transition):
        t = single_blob_transition
        results = Characterizer(t).characterize_all()
        for device, verdict in results.items():
            (motion,) = verdict.witness
            assert len(motion) > t.tau
            assert t.is_consistent_motion(motion)
            assert device in motion

    def test_blob_plus_straggler(self):
        # Five coincident devices and one isolated: mixed verdicts.
        pairs = [(0.5, 0.8)] * 5 + [(0.1, 0.2)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        isolated, massive, unresolved = classify_sets(characterize_transition(t))
        assert massive == frozenset({0, 1, 2, 3, 4})
        assert isolated == frozenset({5})
        assert not unresolved


class TestTheorem7AndCorollary8:
    def test_figure3_unresolved_endpoints(self, figure3_transition):
        results = Characterizer(figure3_transition).characterize_all()
        assert results[0].anomaly_type is AnomalyType.UNRESOLVED
        assert results[0].rule is DecisionRule.COROLLARY_8
        assert results[4].anomaly_type is AnomalyType.UNRESOLVED
        for j in (1, 2, 3):
            assert results[j].anomaly_type is AnomalyType.MASSIVE

    def test_figure3_counterexample_witness(self, figure3_transition):
        verdict = Characterizer(figure3_transition).characterize(0)
        assert verdict.witness is not None
        # The counterexample for device 0 is the competing dense motion
        # {1,2,3,4}.
        assert frozenset({1, 2, 3, 4}) in verdict.witness

    def test_figure5_needs_theorem7(self, figure5_transition):
        results = Characterizer(figure5_transition).characterize_all()
        for verdict in results.values():
            assert verdict.anomaly_type is AnomalyType.MASSIVE
            assert verdict.rule is DecisionRule.THEOREM_7

    def test_cheap_mode_falls_back_to_unresolved(self, figure5_transition):
        results = Characterizer(figure5_transition, full_nsc=False).characterize_all()
        for verdict in results.values():
            assert verdict.anomaly_type is AnomalyType.UNRESOLVED
            assert verdict.rule is DecisionRule.ALGORITHM_3

    def test_budget_enforced(self, figure5_transition):
        with pytest.raises(SearchBudgetExceeded):
            Characterizer(figure5_transition, collection_budget=0).characterize(0)


class TestCostCounters:
    def test_isolated_cost_is_maximal_motion_count(self, scattered_transition):
        verdict = Characterizer(scattered_transition).characterize(0)
        assert verdict.cost.maximal_motions >= 1
        assert verdict.cost.dense_motions == 0
        assert verdict.cost.tested_collections == 0

    def test_theorem7_tested_collections_positive(self, figure5_transition):
        verdict = Characterizer(figure5_transition).characterize(0)
        assert verdict.cost.tested_collections >= 1

    def test_total_collections_counted_on_request(self, figure3_transition):
        char = Characterizer(figure3_transition, count_all_collections=True)
        verdict = char.characterize(0)
        assert verdict.cost.total_collections is not None
        assert verdict.cost.total_collections >= 1

    def test_cost_merge(self):
        from repro.core.types import CostCounters

        a = CostCounters(maximal_motions=2, tested_collections=5)
        b = CostCounters(maximal_motions=3, total_collections=7, window_steps=4)
        a.merge(b)
        assert a.maximal_motions == 5
        assert a.total_collections == 7
        assert a.window_steps == 4
        assert a.as_dict()["tested_collections"] == 5


class TestNeighborhoodSplit:
    def test_J_contains_device_itself(self, figure3_transition):
        cache = MotionCache(figure3_transition)
        split = split_neighborhood(cache, 0)
        assert 0 in split.always_with_j
        assert 0 not in split.sometimes_without_j

    def test_figure3_split_for_endpoint(self, figure3_transition):
        cache = MotionCache(figure3_transition)
        split = split_neighborhood(cache, 0)
        # Devices 1,2,3 also belong to {1,2,3,4} which avoids 0: all in L.
        assert split.sometimes_without_j == frozenset({1, 2, 3})
        assert split.always_with_j == frozenset({0})

    def test_figure3_split_for_center(self, figure3_transition):
        cache = MotionCache(figure3_transition)
        split = split_neighborhood(cache, 2)
        # Every neighbour's dense motions all contain device 2.
        assert split.always_with_j == frozenset({0, 1, 2, 3, 4})
        assert split.sometimes_without_j == frozenset()

    def test_blob_split_trivial(self, single_blob_transition):
        cache = MotionCache(single_blob_transition)
        split = split_neighborhood(cache, 0)
        assert split.always_with_j == single_blob_transition.flagged
        assert not split.sometimes_without_j

    def test_isolated_device_split_empty(self, scattered_transition):
        cache = MotionCache(scattered_transition)
        split = split_neighborhood(cache, 0)
        assert split.dense_neighborhood == frozenset()


class TestInterface:
    def test_unflagged_device_rejected(self):
        t = make_transition_1d([(0.5, 0.5), (0.6, 0.6)], r=0.03, tau=1, flagged=[0])
        with pytest.raises(UnknownDeviceError):
            Characterizer(t).characterize(1)

    def test_characterize_all_covers_flagged(self):
        rng = random.Random(2)
        pairs = random_clustered_pairs(rng, 9, 0.05)
        t = make_transition_1d(pairs, r=0.05, tau=2, flagged=[1, 3, 5])
        results = characterize_transition(t)
        assert set(results) == {1, 3, 5}

    def test_classification_deterministic(self, figure3_transition):
        first = characterize_transition(figure3_transition)
        second = characterize_transition(figure3_transition)
        assert {j: v.anomaly_type for j, v in first.items()} == {
            j: v.anomaly_type for j, v in second.items()
        }

    def test_classify_sets_partition_flagged(self, figure3_transition):
        results = characterize_transition(figure3_transition)
        isolated, massive, unresolved = classify_sets(results)
        assert isolated | massive | unresolved == figure3_transition.flagged
        assert not (isolated & massive)
        assert not (isolated & unresolved)
        assert not (massive & unresolved)

    def test_cache_shared_across_devices(self, figure3_transition):
        char = Characterizer(figure3_transition)
        char.characterize_all()
        # Every flagged device's family computed at most once.
        assert char.cache.expansions <= figure3_transition.n
