"""Property-based validation: local theorems == omniscient oracle.

The central correctness claim of the paper (and of this implementation) is
that the locally computable conditions of Theorems 5 and 7 and Corollary 8
classify every device exactly as the omniscient observer would.  These
tests enumerate all admissible anomaly partitions on random small
configurations and compare.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterize import Characterizer
from repro.core.oracle import oracle_classify
from repro.core.partition import enumerate_anomaly_partitions
from repro.core.types import AnomalyType, DecisionRule
from tests.conftest import make_transition_1d, random_clustered_pairs


def _random_transition(seed: int):
    rng = random.Random(seed)
    n = rng.randint(2, 8)
    tau = rng.randint(1, max(1, n - 1))
    r = rng.uniform(0.02, 0.2)
    pairs = random_clustered_pairs(rng, n, r)
    return make_transition_1d(pairs, r=r, tau=tau)


class TestLocalEqualsOracle:
    @pytest.mark.parametrize("seed", range(40))
    def test_classification_matches(self, seed):
        t = _random_transition(seed)
        local = Characterizer(t).characterize_all()
        oracle = oracle_classify(t)
        for device in t.flagged_sorted:
            assert local[device].anomaly_type is oracle.type_of(device), (
                f"seed={seed} device={device}"
            )

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_classification_matches_fuzz(self, seed):
        t = _random_transition(seed)
        local = Characterizer(t).characterize_all()
        oracle = oracle_classify(t)
        for device in t.flagged_sorted:
            assert local[device].anomaly_type is oracle.type_of(device)

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_theorem6_never_contradicts_oracle(self, seed):
        """Theorem 6 is only sufficient, but must never *mis*classify."""
        t = _random_transition(seed)
        cheap = Characterizer(t, full_nsc=False).characterize_all()
        oracle = oracle_classify(t)
        for device in t.flagged_sorted:
            verdict = cheap[device]
            if verdict.anomaly_type is AnomalyType.MASSIVE:
                assert oracle.type_of(device) is AnomalyType.MASSIVE
            elif verdict.anomaly_type is AnomalyType.ISOLATED:
                assert oracle.type_of(device) is AnomalyType.ISOLATED
            # UNRESOLVED in cheap mode can be anything except isolated:
            # Theorem 5 is exact, so a cheap-unresolved device is truly
            # massive or truly unresolved.
            else:
                assert oracle.type_of(device) is not AnomalyType.ISOLATED


class TestLemma2:
    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_at_least_one_partition_exists(self, seed):
        t = _random_transition(seed)
        assert enumerate_anomaly_partitions(t)


class TestRelaxedAcpContainments:
    """Problem 2: M_k ⊆ M_P and I_k ⊆ I_P for every partition P."""

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_containments(self, seed):
        t = _random_transition(seed)
        oracle = oracle_classify(t)
        tau = t.tau
        for partition in oracle.partitions:
            dense = frozenset(
                x for block in partition if len(block) > tau for x in block
            )
            sparse = t.flagged - dense
            assert oracle.massive <= dense
            assert oracle.isolated <= sparse

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_three_sets_partition_flagged(self, seed):
        t = _random_transition(seed)
        oracle = oracle_classify(t)
        union = oracle.isolated | oracle.massive | oracle.unresolved
        assert union == t.flagged
        assert not oracle.isolated & oracle.massive
        assert not oracle.isolated & oracle.unresolved
        assert not oracle.massive & oracle.unresolved


class TestDecisionRuleSoundness:
    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_rules_report_correct_type(self, seed):
        t = _random_transition(seed)
        for device, verdict in Characterizer(t).characterize_all().items():
            if verdict.rule is DecisionRule.THEOREM_5:
                assert verdict.anomaly_type is AnomalyType.ISOLATED
            elif verdict.rule in (DecisionRule.THEOREM_6, DecisionRule.THEOREM_7):
                assert verdict.anomaly_type is AnomalyType.MASSIVE
            elif verdict.rule is DecisionRule.COROLLARY_8:
                assert verdict.anomaly_type is AnomalyType.UNRESOLVED
