"""Regression tests for bugs found (and fixed) during the reproduction.

Each class pins one concrete configuration that once produced a wrong
answer, so the fix can never silently regress.
"""

from __future__ import annotations

import numpy as np

from repro.core.characterize import Characterizer
from repro.core.motions import all_maximal_motions
from repro.core.oracle import oracle_classify
from repro.core.transition import Transition
from repro.core.types import AnomalyType


class TestTheorem7NonMaximalCollections:
    """Found by property-based fuzzing (seed 137868 of the 1-D generator).

    Theorem 7's collection family is ``W_k(l)`` — *all* tau-dense motions
    of ``L_k(j)`` members — not only maximal ones.  An early
    implementation drew candidates from the maximal family only and
    declared device 1 massive; the true verdict is unresolved, witnessed
    by the collection ``{{0,2,3}, {4,5}}`` whose member ``{4,5}`` is a
    *non-maximal* dense motion (``tau = 1``) inside ``{0,2,4,5}``.
    """

    COMBINED = np.array(
        [
            [0.6510, 0.5494],
            [0.4403, 0.9462],
            [0.5271, 0.6276],
            [0.3381, 0.8828],
            [0.7710, 0.7689],
            [0.5778, 0.4563],
        ]
    )
    R = 0.174
    TAU = 1

    def make(self) -> Transition:
        prev = self.COMBINED[:, :1]
        cur = self.COMBINED[:, 1:]
        return Transition.from_arrays(prev, cur, range(6), self.R, self.TAU)

    def test_motion_structure(self):
        t = self.make()
        motions = sorted(tuple(sorted(m)) for m in all_maximal_motions(t))
        assert motions == [(0, 2, 3), (0, 2, 4, 5), (1, 2, 3), (1, 2, 4)]

    def test_device1_is_unresolved(self):
        t = self.make()
        verdict = Characterizer(t).characterize(1)
        assert verdict.anomaly_type is AnomalyType.UNRESOLVED

    def test_counterexample_uses_nonmaximal_member(self):
        t = self.make()
        verdict = Characterizer(t).characterize(1)
        assert verdict.witness is not None
        union = frozenset().union(*verdict.witness)
        # The counterexample must starve both of device 1's dense motions
        # {1,2,3} and {1,2,4} down to tau = 1 leftovers.
        assert len(frozenset({1, 2, 3}) - union) <= 1
        assert len(frozenset({1, 2, 4}) - union) <= 1

    def test_whole_configuration_matches_oracle(self):
        t = self.make()
        local = Characterizer(t).characterize_all()
        oracle = oracle_classify(t)
        assert oracle.massive == frozenset({0, 2, 4})
        assert oracle.unresolved == frozenset({1, 3, 5})
        for device in t.flagged_sorted:
            assert local[device].anomaly_type is oracle.type_of(device)


class TestPartialFlaggingOracleAgreement:
    """Motions must only ever involve flagged devices: unflagged bystanders
    sitting inside a moving box must not influence verdicts."""

    def test_bystanders_ignored(self):
        # Four co-moving devices but only three are flagged (one detector
        # missed): with tau = 3 the flagged ones are isolated.
        prev = np.full((5, 2), 0.5)
        cur = prev - 0.2
        cur[4] = [0.9, 0.9]
        t = Transition.from_arrays(prev, np.clip(cur, 0, 1), [0, 1, 2], 0.03, 3)
        local = Characterizer(t).characterize_all()
        assert all(v.anomaly_type is AnomalyType.ISOLATED for v in local.values())
        oracle = oracle_classify(t)
        assert oracle.isolated == frozenset({0, 1, 2})

    def test_flagging_the_fourth_flips_to_massive(self):
        prev = np.full((5, 2), 0.5)
        cur = prev - 0.2
        cur[4] = [0.9, 0.9]
        t = Transition.from_arrays(prev, np.clip(cur, 0, 1), [0, 1, 2, 3], 0.03, 3)
        local = Characterizer(t).characterize_all()
        assert all(v.anomaly_type is AnomalyType.MASSIVE for v in local.values())


class TestBoundaryCoordinates:
    """Devices pinned at the cube faces (post-clipping) must be handled."""

    def test_group_at_origin_corner(self):
        prev = np.full((5, 2), 0.02)
        cur = np.zeros((5, 2))  # clipped flush against the corner
        t = Transition.from_arrays(prev, cur, range(5), 0.03, 3)
        local = Characterizer(t).characterize_all()
        assert all(v.anomaly_type is AnomalyType.MASSIVE for v in local.values())

    def test_exactly_2r_separation_is_consistent(self):
        # The closed-ball boundary: distance exactly 2r joins the motion.
        prev = np.array([[0.5, 0.5], [0.56, 0.5], [0.5, 0.56], [0.56, 0.56]])
        cur = prev.copy()
        t = Transition.from_arrays(prev, cur, range(4), 0.03, 3)
        assert t.is_consistent_motion([0, 1, 2, 3])
        motions = all_maximal_motions(t)
        assert sorted(tuple(sorted(m)) for m in motions) == [(0, 1, 2, 3)]
