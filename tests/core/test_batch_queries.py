"""Batch neighbourhood machinery: query_batch and neighborhoods_batch.

The vectorized paths must be *equivalent* to the scalar ones on every
input — same hits, same order — and the neighbourhood memo must now cover
the ``4r`` knowledge ball as well as the ``2r`` operating radius.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, UnknownDeviceError
from repro.core.geometry import GridIndex
from repro.core.transition import Transition


def _random_transition(rng, n=300, d=2, r=0.03, tau=3, flagged_fraction=0.5):
    prev = rng.random((n, d))
    cur = np.clip(prev + rng.normal(0.0, 0.02, prev.shape), 0.0, 1.0)
    n_flagged = max(1, int(n * flagged_fraction))
    flagged = rng.choice(n, size=n_flagged, replace=False)
    return Transition.from_arrays(prev, cur, flagged, r=r, tau=tau)


class TestQueryBatch:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_matches_scalar_query(self, d):
        rng = np.random.default_rng(d)
        for trial in range(10):
            m = int(rng.integers(0, 80))
            pts = rng.random((m, d))
            cell = float(rng.uniform(0.02, 0.3))
            rho = float(rng.uniform(0.0, 0.35))
            index = GridIndex(pts, cell)
            centers = rng.random((int(rng.integers(1, 25)), d))
            batch = index.query_batch(centers, rho)
            scalar = [index.query(c, rho) for c in centers]
            assert batch == scalar

    def test_empty_index(self):
        index = GridIndex(np.zeros((0, 2)), 0.1)
        assert index.query_batch(np.random.default_rng(0).random((4, 2)), 0.2) == [
            [],
            [],
            [],
            [],
        ]

    def test_empty_centers(self):
        index = GridIndex(np.random.default_rng(0).random((10, 2)), 0.1)
        assert index.query_batch(np.zeros((0, 2)), 0.2) == []

    def test_centers_outside_occupied_cells(self):
        # Queries whose cell ring falls entirely outside the occupied key
        # box must return nothing (and not crash on the code mapping).
        pts = np.full((5, 2), 0.5)
        index = GridIndex(pts, 0.01)
        out = index.query_batch(np.array([[0.0, 0.0], [1.0, 1.0]]), 0.005)
        assert out == [[], []]
        hit = index.query_batch(np.array([[0.5, 0.5]]), 0.005)
        assert hit == [[0, 1, 2, 3, 4]]

    def test_unlinearizable_grid_falls_back_to_scalar(self):
        # A degenerate cell side in 4-D makes the occupied key box exceed
        # int64 linearization; the batch path must then agree with the
        # scalar loop via its fallback rather than overflow silently.
        # (rho must stay ~cell-sized: the ring enumeration is per-cell.)
        rng = np.random.default_rng(29)
        pts = rng.random((40, 4))
        index = GridIndex(pts, 1e-6)
        centers = np.vstack([pts[:3], rng.random((3, 4))])
        rho = 1.5e-6
        batch = index.query_batch(centers, rho)
        assert not index._linearizable
        assert batch == [index.query(c, rho) for c in centers]
        assert batch[0] == [0]  # each query point finds itself

    def test_dimension_mismatch_rejected(self):
        index = GridIndex(np.random.default_rng(0).random((10, 2)), 0.1)
        with pytest.raises(DimensionMismatchError):
            index.query_batch(np.zeros((3, 3)), 0.1)

    def test_results_sorted(self):
        rng = np.random.default_rng(7)
        pts = rng.random((200, 2))
        index = GridIndex(pts, 0.06)
        for hits in index.query_batch(rng.random((20, 2)), 0.1):
            assert hits == sorted(hits)


class TestNeighborhoodsBatch:
    def test_matches_scalar_neighborhood(self):
        rng = np.random.default_rng(11)
        t = _random_transition(rng)
        fresh = Transition.from_arrays(
            t.previous.positions, t.current.positions, t.flagged_sorted,
            r=t.r, tau=t.tau,
        )
        batch = t.neighborhoods_batch()
        for j in fresh.flagged_sorted:
            assert batch[j] == fresh.neighborhood(j)

    def test_matches_scalar_knowledge_ball(self):
        rng = np.random.default_rng(13)
        t = _random_transition(rng)
        fresh = Transition.from_arrays(
            t.previous.positions, t.current.positions, t.flagged_sorted,
            r=t.r, tau=t.tau,
        )
        batch = t.neighborhoods_batch(radius_factor=4.0)
        for j in fresh.flagged_sorted:
            assert batch[j] == fresh.knowledge_ball(j)

    def test_subset_and_default_devices(self):
        rng = np.random.default_rng(17)
        t = _random_transition(rng, n=100)
        subset = t.flagged_sorted[:5]
        out = t.neighborhoods_batch(subset)
        assert set(out) == set(subset)
        full = t.neighborhoods_batch()
        assert set(full) == set(t.flagged_sorted)

    def test_unflagged_device_rejected(self):
        rng = np.random.default_rng(19)
        t = _random_transition(rng, n=50, flagged_fraction=0.2)
        unflagged = next(
            j for j in range(t.n) if j not in t.flagged
        )
        with pytest.raises(UnknownDeviceError):
            t.neighborhoods_batch([unflagged])

    def test_batch_warms_scalar_memo(self):
        rng = np.random.default_rng(23)
        t = _random_transition(rng, n=100)
        t.neighborhoods_batch()
        t.neighborhoods_batch(radius_factor=4.0)
        for j in t.flagged_sorted:
            assert (j, 2.0) in t._neighborhood_cache
            assert (j, 4.0) in t._neighborhood_cache


class TestKnowledgeBallCaching:
    """Satellite fix: the 4r query is memoized, not recomputed per call."""

    def test_knowledge_ball_cached(self, figure5_transition):
        t = figure5_transition
        first = t.knowledge_ball(0)
        assert (0, 4.0) in t._neighborhood_cache
        # A second call must be served from the memo without touching the
        # spatial indexes at all.
        calls = {"n": 0}
        original = t._indexes

        def counting_indexes():
            calls["n"] += 1
            return original()

        t._indexes = counting_indexes  # type: ignore[method-assign]
        assert t.knowledge_ball(0) == first
        assert calls["n"] == 0

    def test_both_radii_cached_independently(self, figure5_transition):
        t = figure5_transition
        n2 = t.neighborhood(0)
        n4 = t.knowledge_ball(0)
        assert set(n2) <= set(n4)
        assert t._neighborhood_cache[(0, 2.0)] == n2
        assert t._neighborhood_cache[(0, 4.0)] == n4
