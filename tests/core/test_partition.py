"""Tests for anomaly partitions (:mod:`repro.core.partition`)."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import PartitionError
from repro.core.partition import (
    enumerate_anomaly_partitions,
    greedy_partition,
    is_anomaly_partition,
    iter_set_partitions,
    massive_isolated_split,
    partition_block_of,
    validate_anomaly_partition,
)
from tests.conftest import (
    FIGURE3_PAIRS,
    FIGURE3_R,
    FIGURE3_TAU,
    make_transition_1d,
    random_clustered_pairs,
)


def bell_number(n: int) -> int:
    """Bell numbers via the triangle recurrence (reference for the
    partition generator)."""
    row = [1]
    for _ in range(n - 1):
        nxt = [row[-1]]
        for value in row:
            nxt.append(nxt[-1] + value)
        row = nxt
    return row[0] if n > 0 else 1


class TestSetPartitionGenerator:
    @pytest.mark.parametrize("n,expected", [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52)])
    def test_counts_are_bell_numbers(self, n, expected):
        assert sum(1 for _ in iter_set_partitions(list(range(n)))) == expected

    def test_partitions_are_distinct_and_cover(self):
        items = [10, 20, 30, 40]
        seen = set()
        for blocks in iter_set_partitions(items):
            key = frozenset(frozenset(b) for b in blocks)
            assert key not in seen
            seen.add(key)
            flat = sorted(x for b in blocks for x in b)
            assert flat == items


class TestPartitionValidity:
    def test_figure3_partitions(self):
        t = make_transition_1d(FIGURE3_PAIRS, r=FIGURE3_R, tau=FIGURE3_TAU)
        p1 = (frozenset({0, 1, 2, 3}), frozenset({4}))
        p2 = (frozenset({0}), frozenset({1, 2, 3, 4}))
        assert is_anomaly_partition(t, p1)
        assert is_anomaly_partition(t, p2)

    def test_figure3_invalid_partition(self):
        # Splitting the dense motion in half leaves a dense motion inside
        # the sparse union (C1 violation): {0,1,2} u {3,4} can rebuild a
        # 4-dense motion.
        t = make_transition_1d(FIGURE3_PAIRS, r=FIGURE3_R, tau=FIGURE3_TAU)
        p = (frozenset({0, 1, 2}), frozenset({3, 4}))
        assert not is_anomaly_partition(t, p)

    def test_non_consistent_block_rejected(self):
        t = make_transition_1d([(0.1, 0.1), (0.9, 0.9)], r=0.03, tau=1)
        assert not is_anomaly_partition(t, (frozenset({0, 1}),))

    def test_overlap_rejected(self):
        t = make_transition_1d([(0.5, 0.5)] * 2, r=0.03, tau=1)
        p = (frozenset({0, 1}), frozenset({1}))
        assert not is_anomaly_partition(t, p)

    def test_cover_required(self):
        t = make_transition_1d([(0.1, 0.1), (0.9, 0.9)], r=0.03, tau=1)
        assert not is_anomaly_partition(t, (frozenset({0}),))

    def test_empty_block_rejected(self):
        t = make_transition_1d([(0.5, 0.5)], r=0.03, tau=1)
        assert not is_anomaly_partition(t, (frozenset(), frozenset({0})))

    def test_c2_violation(self):
        # Four coincident devices plus one at distance exactly 2r: putting
        # the singleton aside while keeping the blob dense violates C2
        # because the singleton could merge with the dense block.
        pairs = [(0.5, 0.5)] * 4 + [(0.6, 0.6)]
        t = make_transition_1d(pairs, r=0.05, tau=3)
        p = (frozenset({0, 1, 2, 3}), frozenset({4}))
        assert not is_anomaly_partition(t, p)
        # The only valid partition keeps all five together.
        assert is_anomaly_partition(t, (frozenset({0, 1, 2, 3, 4}),))

    def test_validate_raises_with_reason(self):
        t = make_transition_1d([(0.1, 0.1), (0.9, 0.9)], r=0.03, tau=1)
        with pytest.raises(PartitionError):
            validate_anomaly_partition(t, (frozenset({0, 1}),))

    def test_validate_normalizes(self):
        t = make_transition_1d([(0.1, 0.1), (0.9, 0.9)], r=0.03, tau=1)
        out = validate_anomaly_partition(t, (frozenset({1}), frozenset({0})))
        assert out == (frozenset({0}), frozenset({1}))


class TestBlockHelpers:
    def test_block_of(self):
        p = (frozenset({0, 1}), frozenset({2}))
        assert partition_block_of(p, 2) == frozenset({2})
        with pytest.raises(PartitionError):
            partition_block_of(p, 5)

    def test_massive_isolated_split(self):
        p = (frozenset({0, 1, 2, 3}), frozenset({4}))
        massive, isolated = massive_isolated_split(p, tau=3)
        assert massive == frozenset({0, 1, 2, 3})
        assert isolated == frozenset({4})


class TestGreedyPartition:
    def test_greedy_output_is_valid(self):
        for seed in range(10):
            rng = random.Random(seed)
            pairs = random_clustered_pairs(rng, 10, 0.05)
            t = make_transition_1d(pairs, r=0.05, tau=2)
            partition = greedy_partition(t, random.Random(seed))
            assert is_anomaly_partition(t, partition)

    def test_greedy_covers_flagged(self):
        rng = random.Random(4)
        pairs = random_clustered_pairs(rng, 8, 0.05)
        t = make_transition_1d(pairs, r=0.05, tau=2, flagged=[0, 2, 4, 6])
        partition = greedy_partition(t)
        flat = frozenset(x for b in partition for x in b)
        assert flat == frozenset({0, 2, 4, 6})

    def test_non_uniqueness_figure2_style(self):
        # A chain of overlapping motions: different seeds may peel blocks
        # differently (Lemma 2's non-uniqueness).
        pairs = [(0.30, 0.30), (0.33, 0.33), (0.36, 0.36), (0.39, 0.39), (0.42, 0.42)]
        t = make_transition_1d(pairs, r=0.03, tau=2)
        seen = set()
        for seed in range(20):
            partition = greedy_partition(t, random.Random(seed))
            assert is_anomaly_partition(t, partition)
            seen.add(frozenset(partition))
        assert len(seen) > 1

    def test_empty_flagged(self):
        t = make_transition_1d([(0.5, 0.5), (0.6, 0.6)], r=0.03, tau=1, flagged=[])
        assert greedy_partition(t) == ()


class TestGreedyStrategies:
    """Reproduction finding: verbatim Algorithm 1 can violate C1.

    With devices at combined coordinates 0.50, 0.53, 0.56, 0.62 and
    ``2r = 0.06``, ``tau = 2``: the maximal motion through device 3 is the
    sparse pair {2, 3}; peeling it first strands the dense motion
    {0, 1, 2} across two sparse blocks, violating condition C1 of
    Definition 6.  The dense-first strategy is immune by construction.
    """

    PAIRS = [(0.50, 0.50), (0.53, 0.53), (0.56, 0.56), (0.62, 0.62)]

    def make(self):
        return make_transition_1d(self.PAIRS, r=0.03, tau=2)

    def test_paper_strategy_can_violate_c1(self):
        t = self.make()
        invalid_seen = False
        for seed in range(30):
            p = greedy_partition(t, random.Random(seed), strategy="paper")
            if not is_anomaly_partition(t, p):
                invalid_seen = True
                # The failure mode is precisely the severed dense motion.
                sparse_union = frozenset(
                    x for b in p if len(b) <= t.tau for x in b
                )
                assert frozenset({0, 1, 2}) <= sparse_union
        assert invalid_seen

    def test_dense_first_always_valid_here(self):
        t = self.make()
        for seed in range(30):
            p = greedy_partition(t, random.Random(seed), strategy="dense-first")
            assert is_anomaly_partition(t, p)

    def test_dense_first_always_valid_random(self):
        for seed in range(25):
            rng = random.Random(seed)
            n = rng.randint(2, 9)
            pairs = random_clustered_pairs(rng, n, 0.05)
            t = make_transition_1d(pairs, r=0.05, tau=rng.randint(1, min(3, n - 1)))
            for gseed in range(5):
                p = greedy_partition(t, random.Random(gseed))
                assert is_anomaly_partition(t, p)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PartitionError):
            greedy_partition(self.make(), strategy="bogus")


class TestEnumeration:
    def test_lemma2_existence(self):
        # Lemma 2: at least one admissible partition exists for any config.
        for seed in range(15):
            rng = random.Random(seed)
            n = rng.randint(2, 7)
            pairs = random_clustered_pairs(rng, n, 0.05)
            t = make_transition_1d(pairs, r=0.05, tau=rng.randint(1, min(3, n - 1)))
            assert enumerate_anomaly_partitions(t), f"seed {seed}: no partition"

    def test_figure3_exactly_two_partitions(self):
        t = make_transition_1d(FIGURE3_PAIRS, r=FIGURE3_R, tau=FIGURE3_TAU)
        partitions = enumerate_anomaly_partitions(t)
        as_sets = {frozenset(p) for p in partitions}
        assert as_sets == {
            frozenset({frozenset({0, 1, 2, 3}), frozenset({4})}),
            frozenset({frozenset({0}), frozenset({1, 2, 3, 4})}),
        }

    def test_greedy_result_among_enumerated(self):
        for seed in range(8):
            rng = random.Random(seed)
            pairs = random_clustered_pairs(rng, 6, 0.05)
            t = make_transition_1d(pairs, r=0.05, tau=2)
            enumerated = {frozenset(p) for p in enumerate_anomaly_partitions(t)}
            greedy = frozenset(greedy_partition(t, random.Random(seed)))
            assert greedy in enumerated
