"""Unit tests for :mod:`repro.core.geometry`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, DimensionMismatchError
from repro.core.geometry import (
    GridIndex,
    bounding_box_side,
    is_r_consistent_points,
    pairwise_uniform_distances,
    points_within,
    uniform_distance,
    uniform_norm,
    validate_radius,
    validate_unit_cube,
)


class TestUniformNorm:
    def test_scalar_vector(self):
        assert uniform_norm(np.array([0.3, -0.7, 0.2])) == pytest.approx(0.7)

    def test_empty_vector_is_zero(self):
        assert uniform_norm(np.array([])) == 0.0

    def test_distance_symmetry(self):
        x = np.array([0.1, 0.9])
        y = np.array([0.4, 0.5])
        assert uniform_distance(x, y) == uniform_distance(y, x) == pytest.approx(0.4)

    def test_distance_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            uniform_distance(np.zeros(2), np.zeros(3))

    @given(
        st.lists(st.floats(0, 1), min_size=1, max_size=5).map(np.array),
        st.lists(st.floats(0, 1), min_size=1, max_size=5).map(np.array),
    )
    @settings(max_examples=50)
    def test_triangle_inequality(self, x, y):
        if x.shape != y.shape:
            return
        z = np.zeros_like(x)
        assert uniform_distance(x, y) <= (
            uniform_distance(x, z) + uniform_distance(z, y) + 1e-12
        )


class TestPairwiseDistances:
    def test_matrix_matches_scalar(self):
        pts = np.array([[0.0, 0.0], [0.3, 0.1], [0.9, 0.5]])
        mat = pairwise_uniform_distances(pts)
        for i in range(3):
            for j in range(3):
                assert mat[i, j] == pytest.approx(uniform_distance(pts[i], pts[j]))

    def test_diagonal_zero(self):
        pts = np.random.default_rng(0).random((6, 3))
        mat = pairwise_uniform_distances(pts)
        assert np.allclose(np.diag(mat), 0.0)

    def test_rejects_1d_input(self):
        with pytest.raises(DimensionMismatchError):
            pairwise_uniform_distances(np.array([1.0, 2.0]))


class TestBoundingBox:
    def test_side_equals_diameter_under_uniform_norm(self):
        pts = np.array([[0.1, 0.2], [0.25, 0.2], [0.18, 0.05]])
        assert bounding_box_side(pts) == pytest.approx(
            pairwise_uniform_distances(pts).max()
        )

    def test_empty_set(self):
        assert bounding_box_side(np.zeros((0, 2))) == 0.0

    def test_consistency_predicate_boundary(self):
        # Exactly 2r apart must count as consistent (closed ball).
        pts = np.array([[0.0], [0.2]])
        assert is_r_consistent_points(pts, 0.1)
        assert not is_r_consistent_points(pts, 0.0999)

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=1, max_size=8
        ),
        st.floats(0.01, 0.24),
    )
    @settings(max_examples=50)
    def test_consistency_matches_pairwise_definition(self, raw, r):
        pts = np.array(raw)
        expected = pairwise_uniform_distances(pts).max() <= 2 * r + 1e-12
        assert is_r_consistent_points(pts, r) == expected


class TestPointsWithin:
    def test_box_membership(self):
        pts = np.array([[0.1, 0.1], [0.2, 0.1], [0.5, 0.5]])
        hits = points_within(pts, np.array([0.15, 0.1]), 0.06)
        assert list(hits) == [0, 1]

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            points_within(np.zeros((3, 2)), np.zeros(3), 0.1)


class TestValidation:
    @pytest.mark.parametrize("r", [-0.01, 0.25, 0.5, 1.0])
    def test_radius_out_of_range(self, r):
        with pytest.raises(ConfigurationError):
            validate_radius(r)

    @pytest.mark.parametrize("r", [0.0, 0.03, 0.2499])
    def test_radius_accepted(self, r):
        assert validate_radius(r) == r

    def test_unit_cube_rejects_outliers(self):
        with pytest.raises(ConfigurationError):
            validate_unit_cube(np.array([[0.5, 1.2]]))

    def test_unit_cube_accepts_boundary(self):
        pts = validate_unit_cube(np.array([[0.0, 1.0]]))
        assert pts.shape == (1, 2)


class TestGridIndex:
    def test_query_matches_linear_scan(self):
        rng = np.random.default_rng(7)
        pts = rng.random((200, 2))
        index = GridIndex(pts, cell=0.06)
        for _ in range(20):
            center = rng.random(2)
            rho = rng.uniform(0.01, 0.15)
            expected = sorted(points_within(pts, center, rho).tolist())
            assert index.query(center, rho) == expected

    def test_len_and_properties(self):
        pts = np.random.default_rng(1).random((10, 3))
        index = GridIndex(pts, cell=0.1)
        assert len(index) == 10
        assert index.dim == 3
        assert index.cell == 0.1

    def test_zero_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            GridIndex(np.zeros((1, 2)), cell=0.0)

    def test_query_dimension_mismatch(self):
        index = GridIndex(np.zeros((1, 2)), cell=0.1)
        with pytest.raises(DimensionMismatchError):
            index.query([0.5], 0.1)

    def test_pairs_within(self):
        pts = np.array([[0.0, 0.0], [0.05, 0.0], [0.9, 0.9]])
        index = GridIndex(pts, cell=0.1)
        assert index.query_pairs_within(0.06) == [(0, 1)]

    def test_empty_index(self):
        index = GridIndex(np.zeros((0, 2)), cell=0.1)
        assert index.query([0.5, 0.5], 0.2) == []
