"""Characterizer budget paths: downgrade, pool cap, and propagation.

The Figure 5 configuration is the canonical scenario where Theorem 6 is
insufficient and every device needs the Theorem 7 search — exactly the
code path the budgets guard.
"""

from __future__ import annotations

import pytest

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError, SearchBudgetExceeded
from repro.core.neighborhood import MotionCache
from repro.core.types import AnomalyType, DecisionRule


class TestCollectionBudget:
    def test_propagates_when_fallback_off(self, figure5_transition):
        characterizer = Characterizer(figure5_transition, collection_budget=1)
        with pytest.raises(SearchBudgetExceeded):
            characterizer.characterize(0)

    def test_fallback_downgrades_to_algorithm_3(self, figure5_transition):
        characterizer = Characterizer(
            figure5_transition, collection_budget=1, budget_fallback=True
        )
        verdict = characterizer.characterize(0)
        assert verdict.anomaly_type is AnomalyType.UNRESOLVED
        assert verdict.rule is DecisionRule.ALGORITHM_3

    def test_generous_budget_reaches_theorem_7(self, figure5_transition):
        characterizer = Characterizer(
            figure5_transition, collection_budget=1_000_000
        )
        verdict = characterizer.characterize(0)
        assert verdict.anomaly_type is AnomalyType.MASSIVE
        assert verdict.rule is DecisionRule.THEOREM_7

    def test_fallback_sweep_covers_all_devices(self, figure5_transition):
        # budget_fallback must let a whole-transition pass complete even
        # when every device trips the budget.
        results = Characterizer(
            figure5_transition, collection_budget=1, budget_fallback=True
        ).characterize_all()
        assert set(results) == set(figure5_transition.flagged_sorted)
        assert all(
            v.rule is DecisionRule.ALGORITHM_3 for v in results.values()
        )


class TestPoolCap:
    def test_pool_cap_trip_raises(self, figure5_transition):
        # Figure 5 maximal motions have 4 members; a cap of 4 forbids the
        # 2^4-subset enumeration of a single maximal motion.
        characterizer = Characterizer(figure5_transition, pool_cap=4)
        with pytest.raises(SearchBudgetExceeded, match="candidate pool"):
            characterizer.characterize(0)

    def test_pool_cap_trip_with_fallback(self, figure5_transition):
        verdict = Characterizer(
            figure5_transition, pool_cap=4, budget_fallback=True
        ).characterize(0)
        assert verdict.anomaly_type is AnomalyType.UNRESOLVED
        assert verdict.rule is DecisionRule.ALGORITHM_3


class TestCheapPathUnaffected:
    def test_theorem_5_and_6_ignore_budgets(self, single_blob_transition):
        # Devices settled by the cheap theorems never reach the search, so
        # even a zero-ish budget cannot disturb them.
        results = Characterizer(
            single_blob_transition, collection_budget=1
        ).characterize_all()
        assert all(v.is_massive for v in results.values())
        assert all(
            v.rule is DecisionRule.THEOREM_6 for v in results.values()
        )

    def test_scattered_isolated_ignore_budgets(self, scattered_transition):
        results = Characterizer(
            scattered_transition, collection_budget=1, pool_cap=1
        ).characterize_all()
        assert all(v.is_isolated for v in results.values())


class TestSharedCache:
    def test_external_cache_is_used(self, figure5_transition):
        cache = MotionCache(figure5_transition)
        characterizer = Characterizer(figure5_transition, cache=cache)
        characterizer.characterize(0)
        assert characterizer.cache is cache
        assert len(cache) > 0

    def test_cache_shared_across_characterizers(self, figure5_transition):
        cache = MotionCache(figure5_transition)
        Characterizer(figure5_transition, cache=cache).characterize(0)
        expansions = cache.expansions
        # A second characterizer on the same cache pays nothing for the
        # families the first one already expanded.
        Characterizer(figure5_transition, cache=cache).characterize(0)
        assert cache.expansions == expansions

    def test_cache_transition_mismatch_rejected(
        self, figure5_transition, single_blob_transition
    ):
        cache = MotionCache(single_blob_transition)
        with pytest.raises(ConfigurationError):
            Characterizer(figure5_transition, cache=cache)
