"""Integration tests: the full measure → detect → characterize → report loop."""

from __future__ import annotations


from repro.core.types import AnomalyType
from repro.network import (
    GatewayFault,
    IspTopology,
    NetworkFault,
    NetworkMonitor,
    ReportingPolicy,
    TopologyConfig,
)


def make_monitor(policy=ReportingPolicy.ALL, **kwargs) -> NetworkMonitor:
    topo = IspTopology(
        TopologyConfig(
            cores=2,
            aggregations_per_core=2,
            access_per_aggregation=2,
            gateways_per_access=10,
        )
    )
    return NetworkMonitor(topo, policy=policy, tau=3, seed=42, **kwargs)


class TestNominalOperation:
    def test_no_flags_under_nominal_conditions(self):
        monitor = make_monitor()
        for result in monitor.run(5):
            assert result.flagged == []
            assert result.reports == []

    def test_tick_counter(self):
        monitor = make_monitor()
        monitor.run(3)
        assert monitor.current_tick == 3


class TestNetworkEvent:
    def test_access_fault_classified_massive(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-0-0-0", severity=0.4, duration=3))
        result = monitor.tick()
        impacted = {
            monitor._topology.graph.nodes[g]["device_id"]  # noqa: SLF001 - test introspection
            for g in monitor._topology.gateways_behind("acc-0-0-0")
        }
        assert set(result.flagged) == impacted
        for device in impacted:
            assert result.verdicts[device].anomaly_type is AnomalyType.MASSIVE

    def test_core_fault_impacts_larger_footprint(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("core-0", severity=0.3, duration=3))
        result = monitor.tick()
        assert len(result.flagged) >= 20
        massive = [
            d
            for d, v in result.verdicts.items()
            if v.anomaly_type is AnomalyType.MASSIVE
        ]
        assert len(massive) == len(result.flagged)


class TestLocalEvent:
    def test_gateway_fault_classified_isolated(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(GatewayFault(device_id=17, severity=0.5, duration=3))
        result = monitor.tick()
        assert result.flagged == [17]
        assert result.verdicts[17].anomaly_type is AnomalyType.ISOLATED


class TestMixedEvents:
    def test_simultaneous_faults_disambiguated(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-1-1-1", severity=0.45, duration=3))
        monitor.injector.inject(GatewayFault(device_id=3, severity=0.6, duration=3))
        result = monitor.tick()
        verdict_types = {
            d: v.anomaly_type for d, v in result.verdicts.items()
        }
        assert verdict_types.pop(3) is AnomalyType.ISOLATED
        assert verdict_types
        assert all(t is AnomalyType.MASSIVE for t in verdict_types.values())


class TestReportingPolicies:
    def _mixed_fault_reports(self, policy):
        monitor = make_monitor(policy=policy)
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-0-1-0", severity=0.4, duration=3))
        monitor.injector.inject(GatewayFault(device_id=70, severity=0.6, duration=3))
        return monitor.tick()

    def test_isp_policy_reports_isolated_only(self):
        result = self._mixed_fault_reports(ReportingPolicy.ISP)
        assert [r.device_id for r in result.reports] == [70]
        assert result.reports[0].anomaly_type is AnomalyType.ISOLATED

    def test_ott_policy_reports_massive_only(self):
        result = self._mixed_fault_reports(ReportingPolicy.OTT)
        assert result.reports
        assert all(r.anomaly_type is AnomalyType.MASSIVE for r in result.reports)
        assert 70 not in {r.device_id for r in result.reports}

    def test_all_policy_reports_everything(self):
        result = self._mixed_fault_reports(ReportingPolicy.ALL)
        reported = {r.device_id for r in result.reports}
        assert 70 in reported
        assert len(reported) > 1

    def test_isp_policy_suppresses_mass_notification(self):
        """The paper's motivation: a network event must NOT flood the
        operator with per-gateway reports under the ISP policy."""
        monitor = make_monitor(policy=ReportingPolicy.ISP)
        monitor.run(3)
        monitor.injector.inject(NetworkFault("core-1", severity=0.35, duration=3))
        result = monitor.tick()
        assert len(result.flagged) >= 20
        assert result.reports == []


class TestRecovery:
    def test_fault_expiry_triggers_second_transition(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-0-0-1", severity=0.4, duration=1))
        during = monitor.tick()
        assert during.flagged
        # Fault expires: QoS jumps back up, which is again an abnormal
        # variation and must be classified massive (same footprint).
        after = monitor.tick()
        assert set(after.flagged) == set(during.flagged)
        for verdict in after.verdicts.values():
            assert verdict.anomaly_type is AnomalyType.MASSIVE


class TestEngineRouting:
    """The tick loop routes verdicts through one shared engine."""

    def test_monitor_owns_an_engine(self):
        monitor = make_monitor()
        assert monitor.engine.config.backend == "serial"

    def test_engine_stats_accumulate_over_ticks(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("core-1", severity=0.35, duration=2))
        monitor.run(2)
        assert monitor.engine.stats.transitions >= 1
        assert monitor.engine.stats.devices_characterized > 0

    def test_process_backend_produces_identical_verdicts(self):
        def fault_course(monitor):
            monitor.run(3)
            monitor.injector.inject(
                NetworkFault("core-1", severity=0.35, duration=2)
            )
            return monitor.tick()

        serial = fault_course(make_monitor())
        process = fault_course(
            make_monitor(backend="process", workers=2)
        )
        assert set(serial.verdicts) == set(process.verdicts)
        for device in serial.verdicts:
            assert (
                serial.verdicts[device].anomaly_type
                is process.verdicts[device].anomaly_type
            )

    def test_shared_engine_across_monitors(self):
        from repro.engine import CharacterizationEngine

        engine = CharacterizationEngine()
        monitor = make_monitor(engine=engine)
        assert monitor.engine is engine
