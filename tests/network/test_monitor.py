"""Integration tests: the full measure → detect → characterize → report loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import AnomalyType
from repro.network import (
    GatewayFault,
    IspTopology,
    NetworkFault,
    NetworkMonitor,
    ReportingPolicy,
    TopologyConfig,
)


def make_monitor(policy=ReportingPolicy.ALL, **kwargs) -> NetworkMonitor:
    topo = IspTopology(
        TopologyConfig(
            cores=2,
            aggregations_per_core=2,
            access_per_aggregation=2,
            gateways_per_access=10,
        )
    )
    return NetworkMonitor(topo, policy=policy, tau=3, seed=42, **kwargs)


class TestNominalOperation:
    def test_no_flags_under_nominal_conditions(self):
        monitor = make_monitor()
        for result in monitor.run(5):
            assert result.flagged == []
            assert result.reports == []

    def test_tick_counter(self):
        monitor = make_monitor()
        monitor.run(3)
        assert monitor.current_tick == 3


class TestNetworkEvent:
    def test_access_fault_classified_massive(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-0-0-0", severity=0.4, duration=3))
        result = monitor.tick()
        impacted = {
            monitor._topology.graph.nodes[g]["device_id"]  # noqa: SLF001 - test introspection
            for g in monitor._topology.gateways_behind("acc-0-0-0")
        }
        assert set(result.flagged) == impacted
        for device in impacted:
            assert result.verdicts[device].anomaly_type is AnomalyType.MASSIVE

    def test_core_fault_impacts_larger_footprint(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("core-0", severity=0.3, duration=3))
        result = monitor.tick()
        assert len(result.flagged) >= 20
        massive = [
            d
            for d, v in result.verdicts.items()
            if v.anomaly_type is AnomalyType.MASSIVE
        ]
        assert len(massive) == len(result.flagged)


class TestLocalEvent:
    def test_gateway_fault_classified_isolated(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(GatewayFault(device_id=17, severity=0.5, duration=3))
        result = monitor.tick()
        assert result.flagged == [17]
        assert result.verdicts[17].anomaly_type is AnomalyType.ISOLATED


class TestMixedEvents:
    def test_simultaneous_faults_disambiguated(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-1-1-1", severity=0.45, duration=3))
        monitor.injector.inject(GatewayFault(device_id=3, severity=0.6, duration=3))
        result = monitor.tick()
        verdict_types = {
            d: v.anomaly_type for d, v in result.verdicts.items()
        }
        assert verdict_types.pop(3) is AnomalyType.ISOLATED
        assert verdict_types
        assert all(t is AnomalyType.MASSIVE for t in verdict_types.values())


class TestReportingPolicies:
    def _mixed_fault_reports(self, policy):
        monitor = make_monitor(policy=policy)
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-0-1-0", severity=0.4, duration=3))
        monitor.injector.inject(GatewayFault(device_id=70, severity=0.6, duration=3))
        return monitor.tick()

    def test_isp_policy_reports_isolated_only(self):
        result = self._mixed_fault_reports(ReportingPolicy.ISP)
        assert [r.device_id for r in result.reports] == [70]
        assert result.reports[0].anomaly_type is AnomalyType.ISOLATED

    def test_ott_policy_reports_massive_only(self):
        result = self._mixed_fault_reports(ReportingPolicy.OTT)
        assert result.reports
        assert all(r.anomaly_type is AnomalyType.MASSIVE for r in result.reports)
        assert 70 not in {r.device_id for r in result.reports}

    def test_all_policy_reports_everything(self):
        result = self._mixed_fault_reports(ReportingPolicy.ALL)
        reported = {r.device_id for r in result.reports}
        assert 70 in reported
        assert len(reported) > 1

    def test_isp_policy_suppresses_mass_notification(self):
        """The paper's motivation: a network event must NOT flood the
        operator with per-gateway reports under the ISP policy."""
        monitor = make_monitor(policy=ReportingPolicy.ISP)
        monitor.run(3)
        monitor.injector.inject(NetworkFault("core-1", severity=0.35, duration=3))
        result = monitor.tick()
        assert len(result.flagged) >= 20
        assert result.reports == []


class TestRecovery:
    def test_fault_expiry_triggers_second_transition(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-0-0-1", severity=0.4, duration=1))
        during = monitor.tick()
        assert during.flagged
        # Fault expires: QoS jumps back up, which is again an abnormal
        # variation and must be classified massive (same footprint).
        after = monitor.tick()
        assert set(after.flagged) == set(during.flagged)
        for verdict in after.verdicts.values():
            assert verdict.anomaly_type is AnomalyType.MASSIVE


class TestEngineRouting:
    """The tick loop routes verdicts through one shared engine."""

    def test_monitor_owns_an_engine(self):
        monitor = make_monitor()
        assert monitor.engine.config.backend == "serial"

    def test_engine_stats_accumulate_over_ticks(self):
        monitor = make_monitor()
        monitor.run(3)
        monitor.injector.inject(NetworkFault("core-1", severity=0.35, duration=2))
        monitor.run(2)
        assert monitor.engine.stats.transitions >= 1
        assert monitor.engine.stats.devices_characterized > 0

    def test_process_backend_produces_identical_verdicts(self):
        def fault_course(monitor):
            monitor.run(3)
            monitor.injector.inject(
                NetworkFault("core-1", severity=0.35, duration=2)
            )
            return monitor.tick()

        serial = fault_course(make_monitor())
        process = fault_course(
            make_monitor(backend="process", workers=2)
        )
        assert set(serial.verdicts) == set(process.verdicts)
        for device in serial.verdicts:
            assert (
                serial.verdicts[device].anomaly_type
                is process.verdicts[device].anomaly_type
            )

    def test_shared_engine_across_monitors(self):
        from repro.engine import CharacterizationEngine

        engine = CharacterizationEngine()
        monitor = make_monitor(engine=engine)
        assert monitor.engine is engine


class TestDetectionPlane:
    """The tick loop detects through an array bank; planes agree."""

    def _fault_course(self, monitor):
        results = monitor.run(3)
        monitor.injector.inject(NetworkFault("acc-0-0-0", severity=0.4, duration=2))
        results.append(monitor.tick())
        monitor.injector.inject(GatewayFault(device_id=5, severity=0.6, duration=1))
        results.append(monitor.tick())
        results.append(monitor.tick())
        return results

    def test_bank_and_scalar_planes_identical(self):
        bank = self._fault_course(make_monitor())
        scalar = self._fault_course(make_monitor(detection="scalar"))
        for got, want in zip(bank, scalar):
            assert got.flagged == want.flagged
            assert np.array_equal(got.qos, want.qos)
            assert {d: v.anomaly_type for d, v in got.verdicts.items()} == {
                d: v.anomaly_type for d, v in want.verdicts.items()
            }

    def test_detector_spec_selects_family(self):
        from repro.detection import DetectorSpec, EwmaBank

        monitor = make_monitor(
            detector_spec=DetectorSpec(
                "ewma", {"alpha": 0.3, "nsigma": 5.0, "warmup": 3, "min_std": 5e-3}
            ),
            keep_detections=True,
        )
        assert isinstance(monitor.bank, EwmaBank)
        monitor.run(5)
        monitor.injector.inject(NetworkFault("acc-0-0-0", severity=0.5, duration=2))
        result = monitor.tick()
        assert len(result.flagged) == 10
        assert result.detection is not None
        assert result.detection.flagged_devices() == result.flagged
        assert monitor.last_detection is result.detection

    def test_detection_retention_opt_in(self):
        monitor = make_monitor()
        result = monitor.tick()
        # Off by default: TickResult stays lean, the latest detection is
        # still reachable on the monitor itself.
        assert result.detection is None
        assert monitor.last_detection is not None
        assert monitor.last_detection.flagged_devices() == result.flagged

    def test_legacy_factory_runs_scalar_plane(self):
        from repro.detection import ScalarDetectorBank, StepThresholdDetector

        monitor = make_monitor(
            detector_factory=lambda: StepThresholdDetector(max_step=0.12)
        )
        assert isinstance(monitor.bank, ScalarDetectorBank)

    def test_factory_and_spec_conflict_rejected(self):
        from repro.core.errors import ConfigurationError
        from repro.detection import DetectorSpec, StepThresholdDetector

        with pytest.raises(ConfigurationError):
            make_monitor(
                detector_factory=lambda: StepThresholdDetector(max_step=0.1),
                detector_spec=DetectorSpec("step", {"max_step": 0.1}),
            )
        with pytest.raises(ConfigurationError):
            make_monitor(
                detector_factory=lambda: StepThresholdDetector(max_step=0.1),
                detection="bank",
            )

    def test_vectorized_measurement_matches_scalar_loop(self):
        """qos_matrix is bit-exact with per-gateway qos_vector calls."""
        monitor = make_monitor()
        monitor.injector.inject(NetworkFault("core-0", severity=0.3, duration=3))
        monitor.injector.tick()
        topo, catalog = monitor._topology, monitor.catalog  # noqa: SLF001
        matrix = catalog.qos_matrix(topo)
        for device in range(topo.n_gateways):
            vector = catalog.qos_vector(topo, topo.gateway_name(device))
            assert matrix[device].tolist() == vector
