"""Network monitor with alternative detector banks.

The monitor's default step-threshold detector is the bluntest choice;
these tests run the same fault scenarios with EWMA, Holt–Winters and
Kalman banks and check the end-to-end verdicts still come out right —
the characterization layer is detector-agnostic by design.
"""

from __future__ import annotations

import pytest

from repro.core.types import AnomalyType
from repro.detection import EwmaDetector, HoltWintersDetector, KalmanDetector
from repro.network import (
    GatewayFault,
    IspTopology,
    NetworkFault,
    NetworkMonitor,
    ReportingPolicy,
    TopologyConfig,
)

FACTORIES = {
    "ewma": lambda: EwmaDetector(alpha=0.3, nsigma=5.0, warmup=3, min_std=5e-3),
    "holt-winters": lambda: HoltWintersDetector(warmup=3, band=5.0, min_deviation=5e-3),
    "kalman": lambda: KalmanDetector(nsigma=6.0, warmup=3, measurement_var=5e-5),
}


def make_monitor(factory):
    topology = IspTopology(
        TopologyConfig(
            cores=2,
            aggregations_per_core=2,
            access_per_aggregation=2,
            gateways_per_access=8,
        )
    )
    return NetworkMonitor(
        topology,
        policy=ReportingPolicy.ALL,
        detector_factory=factory,
        noise_sigma=0.001,
        seed=9,
    )


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestDetectorAgnosticPipeline:
    def test_nominal_quiet(self, name):
        monitor = make_monitor(FACTORIES[name])
        for result in monitor.run(8):
            assert not result.reports, f"{name} raised false alarms"

    def test_network_fault_massive(self, name):
        monitor = make_monitor(FACTORIES[name])
        monitor.run(8)
        monitor.injector.inject(NetworkFault("acc-0-0-0", severity=0.5, duration=2))
        result = monitor.tick()
        assert len(result.flagged) == 8, f"{name} missed gateways"
        assert all(
            v.anomaly_type is AnomalyType.MASSIVE for v in result.verdicts.values()
        )

    def test_gateway_fault_isolated(self, name):
        monitor = make_monitor(FACTORIES[name])
        monitor.run(8)
        monitor.injector.inject(GatewayFault(device_id=11, severity=0.6, duration=2))
        result = monitor.tick()
        assert result.flagged == [11]
        assert result.verdicts[11].anomaly_type is AnomalyType.ISOLATED
