"""Tests for the synthetic ISP topology and fault injection."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, UnknownDeviceError
from repro.network import (
    FaultInjector,
    GatewayFault,
    IspTopology,
    NetworkFault,
    NodeKind,
    TopologyConfig,
    default_catalog,
)


@pytest.fixture
def small_topology() -> IspTopology:
    return IspTopology(
        TopologyConfig(
            cores=2,
            aggregations_per_core=2,
            access_per_aggregation=2,
            gateways_per_access=5,
            servers=2,
        )
    )


class TestTopologyConstruction:
    def test_gateway_count(self, small_topology):
        assert small_topology.n_gateways == 2 * 2 * 2 * 5
        assert small_topology.config.total_gateways == small_topology.n_gateways

    def test_device_ids_sequential(self, small_topology):
        for device_id in range(small_topology.n_gateways):
            name = small_topology.gateway_name(device_id)
            assert small_topology.graph.nodes[name]["device_id"] == device_id

    def test_unknown_device_rejected(self, small_topology):
        with pytest.raises(UnknownDeviceError):
            small_topology.gateway_name(10**6)

    def test_node_kinds(self, small_topology):
        assert small_topology.kind("core-0") is NodeKind.CORE
        assert small_topology.kind("agg-0-1") is NodeKind.AGGREGATION
        assert small_topology.kind("acc-1-0-1") is NodeKind.ACCESS
        assert small_topology.kind("srv-0") is NodeKind.SERVER
        assert small_topology.kind(small_topology.gateway_name(0)) is NodeKind.GATEWAY

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(cores=0)

    def test_graph_connected(self, small_topology):
        import networkx as nx

        assert nx.is_connected(small_topology.graph)


class TestRoutingAndHealth:
    def test_route_endpoints(self, small_topology):
        gw = small_topology.gateway_name(0)
        route = small_topology.route(gw, "srv-0")
        assert route[0] == gw
        assert route[-1] == "srv-0"

    def test_route_goes_through_access_chain(self, small_topology):
        route = small_topology.route("gw-0-1-0-2", "srv-0")
        assert "acc-0-1-0" in route
        assert "agg-0-1" in route

    def test_nominal_path_health_is_one(self, small_topology):
        gw = small_topology.gateway_name(3)
        assert small_topology.path_health(gw, "srv-0") == pytest.approx(1.0)

    def test_degraded_node_reduces_path_health(self, small_topology):
        small_topology.set_health("core-0", 0.5)
        gw = "gw-0-0-0-0"
        assert small_topology.path_health(gw, "srv-0") == pytest.approx(0.5)

    def test_health_clamped(self, small_topology):
        small_topology.set_health("core-0", -2.0)
        assert small_topology.health("core-0") == 0.0
        small_topology.set_health("core-0", 7.0)
        assert small_topology.health("core-0") == 1.0

    def test_reset_health(self, small_topology):
        small_topology.set_health("core-0", 0.1)
        small_topology.reset_health()
        assert small_topology.health("core-0") == 1.0

    def test_gateways_behind_access_node(self, small_topology):
        behind = small_topology.gateways_behind("acc-0-0-0")
        assert len(behind) == 5
        assert all(name.startswith("gw-0-0-0-") for name in behind)

    def test_gateways_behind_core(self, small_topology):
        # A core failure touches at least its own subtree.
        behind = small_topology.gateways_behind("core-0")
        assert len(behind) >= 2 * 2 * 5


class TestFaultInjector:
    def test_network_fault_applies_and_expires(self, small_topology):
        injector = FaultInjector(small_topology)
        injector.inject(NetworkFault("agg-0-0", severity=0.4, duration=2))
        injector.tick()
        assert small_topology.health("agg-0-0") == pytest.approx(0.6)
        injector.tick()
        assert small_topology.health("agg-0-0") == pytest.approx(0.6)
        injector.tick()  # expired
        assert small_topology.health("agg-0-0") == pytest.approx(1.0)

    def test_gateway_fault_targets_leaf(self, small_topology):
        injector = FaultInjector(small_topology)
        injector.inject(GatewayFault(device_id=7, severity=0.5))
        injector.tick()
        gw = small_topology.gateway_name(7)
        assert small_topology.health(gw) == pytest.approx(0.5)

    def test_faults_compose_multiplicatively(self, small_topology):
        injector = FaultInjector(small_topology)
        injector.inject(NetworkFault("core-0", severity=0.5))
        injector.inject(NetworkFault("core-0", severity=0.5))
        injector.tick()
        assert small_topology.health("core-0") == pytest.approx(0.25)

    def test_clear(self, small_topology):
        injector = FaultInjector(small_topology)
        injector.inject(NetworkFault("core-0", severity=0.5))
        injector.clear("core-0")
        injector.tick()
        assert small_topology.health("core-0") == pytest.approx(1.0)

    def test_network_fault_rejects_gateway_target(self, small_topology):
        injector = FaultInjector(small_topology)
        with pytest.raises(ConfigurationError):
            injector.inject(NetworkFault("gw-0-0-0-0", severity=0.5))

    def test_unknown_node_rejected(self, small_topology):
        injector = FaultInjector(small_topology)
        with pytest.raises(UnknownDeviceError):
            injector.inject(NetworkFault("nonexistent", severity=0.5))

    def test_severity_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkFault("core-0", severity=0.0)
        with pytest.raises(ConfigurationError):
            GatewayFault(device_id=0, severity=1.5)


class TestServiceCatalog:
    def test_default_catalog_dim(self, small_topology):
        catalog = default_catalog(small_topology, dim=3)
        assert catalog.dim == 3
        assert len(catalog) == 3

    def test_services_spread_over_servers(self, small_topology):
        catalog = default_catalog(small_topology, dim=2)
        assert catalog[0].server != catalog[1].server

    def test_qos_vector_nominal(self, small_topology):
        catalog = default_catalog(small_topology, dim=2)
        qos = catalog.qos_vector(small_topology, small_topology.gateway_name(0))
        assert qos == pytest.approx([0.95, 0.95])

    def test_qos_vector_reflects_fault(self, small_topology):
        catalog = default_catalog(small_topology, dim=2)
        server = catalog[0].server
        small_topology.set_health(server, 0.5)
        qos = catalog.qos_vector(small_topology, small_topology.gateway_name(0))
        assert qos[0] == pytest.approx(0.95 * 0.5)
