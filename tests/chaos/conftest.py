"""Shared fixtures for the chaos suite."""

from __future__ import annotations

import pytest

from repro.obs.metrics import _reset_global_registry


@pytest.fixture(autouse=True)
def fresh_registry():
    """Give every chaos test its own process-global metric registry.

    The fault-tolerance counters (respawns, retries, health
    transitions) default to the global registry; without isolation one
    test's faults leak into the next's assertions.
    """
    _reset_global_registry()
    yield
    _reset_global_registry()
