"""Sharded-topology chaos: one shard's pool under fire, poisoned frames.

Two contracts:

* killing one shard's pool workers mid-stream degrades that shard to
  supervised retries — never to wrong answers: the sharded service
  still emits the exact verdict stream of a fault-free single service
  fed the same updates;
* corrupted measurement frames are handled by the sharded front door
  exactly like the single service's: strict validation refuses the
  frame atomically, sanitize repairs the bad rows and the tick goes on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.detection.banks import DetectorSpec
from repro.engine import CharacterizationEngine, EngineConfig
from repro.online import (
    OnlineCharacterizationService,
    QosUpdate,
    ServiceConfig,
    ShardedService,
)
from repro.robust.chaos import FaultPlan, inject

CFG = ServiceConfig(r=0.05, tau=2)


def _history(service, base, ticks, seed):
    """Drive a seeded random stream; return the verdict history."""
    n, d = base.shape
    rng = np.random.default_rng(seed)
    positions = base.copy()
    history = []
    for _ in range(ticks):
        movers = rng.choice(n, size=max(1, n // 4), replace=False)
        for j in movers:
            j = int(j)
            sigma = 0.1 if rng.random() < 0.3 else 0.01
            positions[j] = np.clip(
                positions[j] + rng.normal(0, sigma, d), 0, 1
            )
            service.ingest(
                QosUpdate(j, tuple(positions[j]), bool(rng.random() < 0.5))
            )
        tick = service.end_tick()
        history.append(
            {
                j: (v.anomaly_type, v.rule, v.witness)
                for j, v in tick.verdicts.items()
            }
        )
    return history


class TestShardWorkerKill:
    def test_killing_one_shards_pool_degrades_not_diverges(self):
        base = np.random.default_rng(10).random((60, 2))

        with OnlineCharacterizationService(base.copy(), CFG) as single:
            clean = _history(single, base, ticks=5, seed=77)

        sharded = ShardedService(
            base.copy(), CFG, topology_shards=2, parallel=False
        )
        victim = sharded.workers[0]
        victim.engine.close()
        victim.engine = CharacterizationEngine(
            EngineConfig(
                backend="process",
                workers=2,
                min_process_devices=1,
                dispatch_deadline=2.0,
                retry_backoff=0.01,
                serial_fallback_after=1_000,
            )
        )
        plan = FaultPlan(seed=11, kill_probability=0.15, drop_probability=0.1)
        try:
            with inject(plan) as injector:
                chaotic = _history(sharded, base, ticks=5, seed=77)
            assert sum(injector.injected.values()) > 0
            assert chaotic == clean
        finally:
            sharded.close()


class TestProcessShardKill:
    """Chaos against the process topology's own supervision plane.

    Here the kill strikes the *shard child process* (not a pool worker
    inside it): the front door must respawn it against the surviving shm
    planes — or degrade it to an in-parent serial worker when retries
    run out — and keep the verdict stream bit-identical to a fault-free
    single service.
    """

    def test_probabilistic_kills_respawn_never_diverge(self):
        base = np.random.default_rng(20).random((60, 2))
        cfg = ServiceConfig(
            r=0.05, tau=2, dispatch_deadline=5.0, dispatch_retries=3
        )

        with OnlineCharacterizationService(base.copy(), cfg) as single:
            clean = _history(single, base, ticks=6, seed=88)

        sharded = ShardedService(
            base.copy(), cfg, topology_shards=4,
            topology_workers="process",
        )
        plan = FaultPlan(seed=13, kill_probability=0.15, drop_probability=0.1)
        try:
            with inject(plan) as injector:
                chaotic = _history(sharded, base, ticks=6, seed=88)
            assert sum(injector.injected.values()) > 0
            assert chaotic == clean
            assert sum(
                h.respawns for h in sharded.handles
                if hasattr(h, "respawns")
            ) > 0
        finally:
            sharded.close()

    def test_exhausted_retries_degrade_to_inline_not_divergent(self):
        from repro.online.procshard import _InlineShardHandle

        base = np.random.default_rng(30).random((48, 2))
        cfg = ServiceConfig(
            r=0.05, tau=2, dispatch_deadline=5.0, dispatch_retries=0
        )

        with OnlineCharacterizationService(base.copy(), cfg) as single:
            clean = _history(single, base, ticks=5, seed=55)

        sharded = ShardedService(
            base.copy(), cfg, topology_shards=2,
            topology_workers="process",
        )
        plan = FaultPlan(kill_at={2: 1})
        try:
            with inject(plan) as injector:
                chaotic = _history(sharded, base, ticks=5, seed=55)
            assert injector.injected.get("kill") == 1
            degraded = [
                h for h in sharded.handles
                if isinstance(h, _InlineShardHandle)
            ]
            assert len(degraded) == 1
            assert degraded[0].shard == 1
            assert chaotic == clean
        finally:
            sharded.close()


class TestShardedFrameCorruption:
    def _raw(self, validation, n=24, seed=0):
        rng = np.random.default_rng(seed)
        base = rng.random((n, 2))
        service = ShardedService(
            base,
            ServiceConfig(r=0.05, tau=2, validation=validation),
            topology_shards=4,
            parallel=False,
            detector=DetectorSpec("step", {"max_step": 0.2}),
            detection="bank",
        )
        return service, base

    def test_strict_rejects_the_frame_atomically(self):
        service, base = self._raw("strict")
        try:
            rng = np.random.default_rng(1)
            drift = np.clip(base + rng.normal(0, 0.01, base.shape), 0, 1)
            service.feed_measurements(drift)
            seen = service.bank.samples_seen
            with inject(FaultPlan(frame_nan_at={2: [3, 5]})):
                with pytest.raises(ConfigurationError):
                    service.feed_measurements(drift)
            assert service.rejected.get("nan") == 2
            assert service.bank.samples_seen == seen
            assert service.current_tick == 1
            # A clean frame afterwards goes through untouched.
            out = service.feed_measurements(drift)
            assert out.tick == 2
        finally:
            service.close()

    def test_sanitize_repairs_rows_and_continues(self):
        service, base = self._raw("sanitize")
        try:
            rng = np.random.default_rng(2)
            drift = np.clip(base + rng.normal(0, 0.01, base.shape), 0, 1)
            service.feed_measurements(drift)
            plan = FaultPlan(frame_nan_at={2: [0]}, frame_oob_at={2: [1]})
            with inject(plan):
                tick = service.feed_measurements(drift)
            assert tick.tick == 2
            assert service.rejected == {"nan": 1, "out-of-range": 1}
            for worker in service.workers:
                positions = worker.store.current_positions()
                assert np.isfinite(positions).all()
                assert ((positions >= 0) & (positions <= 1)).all()
        finally:
            service.close()
