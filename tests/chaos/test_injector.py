"""The chaos injector itself: inert default, plans, replayability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.robust.chaos import ChaosInjector, FaultPlan, get_injector, inject


class TestInertDefault:
    def test_global_injector_is_inactive(self):
        injector = get_injector()
        assert not injector.active
        assert injector.pool_dispatch(1, 0) is None

    def test_inactive_corrupt_frame_returns_input_unchanged(self):
        values = np.random.default_rng(0).random((4, 2))
        assert get_injector().corrupt_frame(1, values) is values


class TestInstall:
    def test_inject_installs_and_uninstalls(self):
        plan = FaultPlan(kill_at={1: 0})
        with inject(plan) as injector:
            assert get_injector() is injector
            assert injector.active
        assert get_injector() is not injector
        assert not get_injector().active

    def test_nested_installs_are_rejected(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="already installed"):
                with inject(FaultPlan()):
                    pass

    def test_uninstall_survives_an_exception(self):
        with pytest.raises(ValueError):
            with inject(FaultPlan()):
                raise ValueError("boom")
        assert not get_injector().active


class TestScheduledFaults:
    def test_scheduled_actions_hit_their_target_only(self):
        injector = ChaosInjector(
            FaultPlan(
                kill_at={1: 0},
                drop_reply_at={2: 1},
                hang_at={3: 0},
                delay_at={4: 1},
                corrupt_seq_at=(5,),
                hang_seconds=0.25,
                delay_seconds=0.05,
            )
        )
        assert injector.pool_dispatch(1, 0).kill
        assert injector.pool_dispatch(1, 1) is None
        assert injector.pool_dispatch(2, 1).drop_reply
        assert injector.pool_dispatch(3, 0).hang == 0.25
        assert injector.pool_dispatch(4, 1).delay == 0.05
        assert injector.pool_dispatch(5, 0).corrupt_seq
        assert injector.pool_dispatch(6, 0) is None
        assert injector.injected == {
            "kill": 1,
            "drop_reply": 1,
            "hang": 1,
            "delay": 1,
            "corrupt_seq": 1,
        }

    def test_probabilistic_schedule_replays_identically(self):
        def draw():
            injector = ChaosInjector(
                FaultPlan(seed=42, kill_probability=0.1, drop_probability=0.1)
            )
            return [
                (a.kill, a.drop_reply) if a else None
                for a in (
                    injector.pool_dispatch(seq, worker)
                    for seq in range(1, 40)
                    for worker in range(2)
                )
            ]

        first, second = draw(), draw()
        assert first == second
        assert any(first)  # p=0.2 over 78 dispatches: faults did fire

    def test_kill_beats_drop_on_one_draw(self):
        injector = ChaosInjector(
            FaultPlan(seed=0, kill_probability=1.0, drop_probability=1.0)
        )
        action = injector.pool_dispatch(1, 0)
        assert action.kill and not action.drop_reply


class TestFrameFaults:
    def test_corrupt_frame_copies_and_counts(self):
        injector = ChaosInjector(
            FaultPlan(
                frame_nan_at={3: [0]},
                frame_inf_at={3: [1]},
                frame_oob_at={4: [2]},
            )
        )
        values = np.random.default_rng(1).random((5, 2))
        out = injector.corrupt_frame(3, values)
        assert out is not values
        assert np.isfinite(values).all()  # caller's array untouched
        assert np.isnan(out[0, 0])
        assert np.isinf(out[1, 0])
        untouched = injector.corrupt_frame(2, values)
        assert untouched is values
        oob = injector.corrupt_frame(4, values)
        assert oob[2, 0] == 7.5
        assert injector.injected == {
            "frame_nan": 1,
            "frame_inf": 1,
            "frame_oob": 1,
        }
