"""Pool-plane chaos: faulted runs terminate and stay verdict-identical.

The acceptance bar of the fault-tolerance PR: with faults injected at
probability up to 0.2 per dispatch, every pool run still terminates
(no deadlock — the dispatch deadline bounds every wait) and returns
exactly the serial path's verdicts, because a killed or silent worker
only ever loses its private cache, never state the verdicts depend on.
"""

from __future__ import annotations

import numpy as np

from repro.core.characterize import Characterizer
from repro.core.transition import Snapshot, Transition
from repro.engine import EngineConfig, WorkerPoolBackend
from repro.robust.chaos import FaultPlan, inject


def _stream(seed, n, ticks, drift=0.01):
    """A drifting random-walk stream of transitions."""
    rng = np.random.default_rng(seed)
    prev = rng.random((n, 2))
    out = []
    for _ in range(ticks):
        cur = np.clip(prev + rng.normal(0, drift, (n, 2)), 0, 1)
        out.append(
            Transition(Snapshot(prev), Snapshot(cur), range(n), 0.05, 2)
        )
        prev = cur
    return out


def _same_verdicts(got, expected):
    assert set(got) == set(expected)
    for device in expected:
        assert got[device].anomaly_type == expected[device].anomaly_type
        assert got[device].rule == expected[device].rule
        assert got[device].witness == expected[device].witness


def _config(**overrides):
    base = dict(
        backend="process",
        workers=2,
        min_process_devices=1,
        dispatch_deadline=2.0,
        retry_backoff=0.01,
        # Keep the pool on the pool path for the whole stream so every
        # tick exercises the supervision machinery.
        serial_fallback_after=1_000,
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestProbabilisticChaos:
    def test_fault_probability_02_terminates_verdict_identical(self):
        # p(kill)=0.1 + p(drop)=0.1 per dispatch — the issue's 0.2 bar.
        config = _config()
        transitions = _stream(0, n=120, ticks=6)
        expected = [Characterizer(t).characterize_all() for t in transitions]
        backend = WorkerPoolBackend()
        plan = FaultPlan(seed=7, kill_probability=0.1, drop_probability=0.1)
        try:
            with inject(plan) as injector:
                for t, want in zip(transitions, expected):
                    run = backend.run(t, t.flagged_sorted, config)
                    _same_verdicts(run.verdicts, want)
            # The seeded plan must actually have injected faults,
            # otherwise this test proves nothing.
            assert sum(injector.injected.values()) > 0
        finally:
            backend.close()

    def test_chaos_with_carry_stays_identical(self):
        # reuse_motions-style carry under fire: a respawned worker has
        # no cache, so its slice must recompute instead of carrying.
        config = _config()
        transitions = _stream(1, n=100, ticks=6, drift=0.0)
        backend = WorkerPoolBackend()
        plan = FaultPlan(seed=3, kill_probability=0.15, drop_probability=0.05)
        try:
            with inject(plan) as injector:
                for t in transitions:
                    run = backend.run(
                        t,
                        t.flagged_sorted,
                        config,
                        carry_clean=t.flagged_sorted,
                    )
                    _same_verdicts(
                        run.verdicts, Characterizer(t).characterize_all()
                    )
            assert sum(injector.injected.values()) > 0
        finally:
            backend.close()


class TestScheduledChaos:
    def test_corrupt_seq_voids_worker_carry_not_verdicts(self):
        # A corrupted ring sequence number makes the worker's carry gate
        # (consecutive-seq check) fail: it recomputes, verdicts hold.
        config = _config()
        transitions = _stream(2, n=80, ticks=3, drift=0.0)
        backend = WorkerPoolBackend()
        try:
            with inject(FaultPlan(corrupt_seq_at=(2,))) as injector:
                for t in transitions:
                    run = backend.run(
                        t,
                        t.flagged_sorted,
                        config,
                        carry_clean=t.flagged_sorted,
                    )
                    _same_verdicts(
                        run.verdicts, Characterizer(t).characterize_all()
                    )
            assert injector.injected.get("corrupt_seq", 0) >= 1
        finally:
            backend.close()

    def test_dispatch_delay_is_latency_not_fault(self):
        config = _config()
        t = _stream(3, n=60, ticks=1)[0]
        backend = WorkerPoolBackend()
        try:
            with inject(FaultPlan(delay_at={1: 0}, delay_seconds=0.05)):
                run = backend.run(t, t.flagged_sorted, config)
            _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
            assert backend.health == "healthy"
        finally:
            backend.close()

    def test_kill_storm_lands_in_serial_fallback_and_still_answers(self):
        # Every dispatch killed: the health machine must walk down to
        # serial-fallback and the backend must keep answering correctly.
        config = _config(
            serial_fallback_after=2, recovery_probe_every=100,
        )
        transitions = _stream(4, n=60, ticks=5)
        backend = WorkerPoolBackend()
        try:
            with inject(FaultPlan(kill_probability=1.0)):
                for t in transitions:
                    run = backend.run(t, t.flagged_sorted, config)
                    _same_verdicts(
                        run.verdicts, Characterizer(t).characterize_all()
                    )
            assert backend.health == "serial-fallback"
        finally:
            backend.close()
