"""Service-plane chaos: frame corruption and pooled streams under fire.

Two contracts:

* corrupted measurement frames (NaN / inf / out-of-range cells) never
  reach the detector bank: strict validation rejects the frame
  atomically, sanitize repairs the bad rows — both count every reason;
* an online stream over the pooled engine with dispatch faults at
  probability 0.2 terminates and emits the exact verdict stream of a
  fault-free serial service fed the same updates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.detection.banks import DetectorSpec
from repro.engine import CharacterizationEngine, EngineConfig
from repro.online import OnlineCharacterizationService, QosUpdate, ServiceConfig
from repro.robust.chaos import FaultPlan, inject


def _raw_service(n=24, d=2, seed=0, validation="strict"):
    rng = np.random.default_rng(seed)
    base = rng.random((n, d))
    service = OnlineCharacterizationService(
        base,
        ServiceConfig(r=0.05, tau=2, validation=validation),
        detector=DetectorSpec("step", {"max_step": 0.2}),
        detection="bank",
    )
    return service, base


def _drift(rng, base, sigma=0.01):
    return np.clip(base + rng.normal(0, sigma, base.shape), 0, 1)


class TestFrameCorruption:
    @pytest.mark.parametrize(
        "field, reason",
        [
            ("frame_nan_at", "nan"),
            ("frame_inf_at", "inf"),
            ("frame_oob_at", "out-of-range"),
        ],
    )
    def test_strict_rejects_before_the_bank_observes(self, field, reason):
        service, base = _raw_service()
        try:
            rng = np.random.default_rng(1)
            service.feed_measurements(_drift(rng, base))
            seen = service.bank.samples_seen
            # Tick 2's frame is corrupted in flight.
            with inject(FaultPlan(**{field: {2: [3, 5]}})) as injector:
                with pytest.raises(ConfigurationError):
                    service.feed_measurements(_drift(rng, base))
            assert injector.injected.get(f"frame_{reason[:3]}", 0) + \
                injector.injected.get("frame_oob", 0) >= 1
            assert service.rejected.get(reason) == 2
            # The bank never saw the poisoned frame.
            assert service.bank.samples_seen == seen
            # A clean frame afterwards goes through untouched.
            service.feed_measurements(_drift(rng, base))
            assert service.bank.samples_seen == seen + 1
        finally:
            service.close()

    def test_sanitize_repairs_and_continues(self):
        service, base = _raw_service(validation="sanitize")
        try:
            rng = np.random.default_rng(2)
            service.feed_measurements(_drift(rng, base))
            plan = FaultPlan(frame_nan_at={2: [0]}, frame_inf_at={2: [1]})
            with inject(plan):
                tick = service.feed_measurements(_drift(rng, base))
            assert tick.tick == 2
            assert service.rejected == {"nan": 1, "inf": 1}
            # The repaired rows kept their stored positions: state is
            # still finite and in the unit cube.
            positions = service.store.current_positions()
            assert np.isfinite(positions).all()
            assert ((positions >= 0) & (positions <= 1)).all()
        finally:
            service.close()

    def test_chaos_off_means_no_copy_no_rejects(self):
        service, base = _raw_service()
        try:
            rng = np.random.default_rng(3)
            for _ in range(3):
                service.feed_measurements(_drift(rng, base))
            assert service.rejected == {}
        finally:
            service.close()


class TestPooledStreamUnderChaos:
    def _drive(self, base, ticks, seed, *, chaos, validation="strict"):
        """One randomized stream; returns the per-tick verdict history."""
        if chaos:
            engine = CharacterizationEngine(
                EngineConfig(
                    backend="process",
                    workers=2,
                    min_process_devices=1,
                    dispatch_deadline=2.0,
                    retry_backoff=0.01,
                    serial_fallback_after=1_000,
                )
            )
        else:
            engine = CharacterizationEngine(EngineConfig(backend="serial"))
        service = OnlineCharacterizationService(
            base.copy(),
            ServiceConfig(r=0.05, tau=2, validation=validation),
            engine=engine,
        )
        n, d = base.shape
        rng = np.random.default_rng(seed)
        positions = base.copy()
        history = []
        with engine:
            for _ in range(ticks):
                movers = rng.choice(n, size=max(1, n // 10), replace=False)
                for j in movers:
                    j = int(j)
                    sigma = 0.1 if rng.random() < 0.3 else 0.01
                    positions[j] = np.clip(
                        positions[j] + rng.normal(0, sigma, d), 0, 1
                    )
                    service.ingest(
                        QosUpdate(
                            j, tuple(positions[j]), bool(rng.random() < 0.5)
                        )
                    )
                tick = service.end_tick()
                history.append(
                    {
                        j: (v.anomaly_type, v.rule, v.witness)
                        for j, v in tick.verdicts.items()
                    }
                )
        return history

    def test_stream_under_02_faults_matches_fault_free_serial(self):
        base = np.random.default_rng(10).random((120, 2))
        clean = self._drive(base, ticks=6, seed=99, chaos=False)
        plan = FaultPlan(seed=11, kill_probability=0.1, drop_probability=0.1)
        with inject(plan) as injector:
            chaotic = self._drive(base, ticks=6, seed=99, chaos=True)
        assert sum(injector.injected.values()) > 0
        assert chaotic == clean
