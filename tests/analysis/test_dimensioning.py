"""Tests for the Figure 6 dimensioning mathematics."""

from __future__ import annotations


import numpy as np
import pytest
from scipy import stats

from repro.analysis.dimensioning import (
    expected_vicinity_size,
    isolated_containment_probability,
    isolated_overflow_probability,
    recommend_parameters,
    vicinity_probability,
    vicinity_size_cdf,
    vicinity_size_pmf,
)
from repro.core.errors import ConfigurationError


class TestVicinityProbability:
    def test_interior_formula(self):
        assert vicinity_probability(0.03, 2) == pytest.approx((4 * 0.03) ** 2)

    def test_average_formula(self):
        r = 0.1
        assert vicinity_probability(r, 1, boundary="average") == pytest.approx(
            4 * r - 4 * r * r
        )

    def test_average_below_interior(self):
        assert vicinity_probability(0.05, 2, boundary="average") < vicinity_probability(
            0.05, 2, boundary="interior"
        )

    def test_average_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        r, n_samples = 0.06, 200_000
        x = rng.random(n_samples)
        y = rng.random(n_samples)
        hits = np.abs(x - y) <= 2 * r
        assert vicinity_probability(r, 1, boundary="average") == pytest.approx(
            hits.mean(), abs=5e-3
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            vicinity_probability(0.3, 2)
        with pytest.raises(ConfigurationError):
            vicinity_probability(0.03, 0)
        with pytest.raises(ConfigurationError):
            vicinity_probability(0.03, 2, boundary="bogus")


class TestVicinityDistribution:
    def test_pmf_sums_to_one(self):
        pmf = vicinity_size_pmf(500, 0.03)
        assert pmf.sum() == pytest.approx(1.0)

    def test_cdf_monotone(self):
        cdf = vicinity_size_cdf(1000, 0.03, list(range(0, 100, 5)))
        assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))

    def test_paper_figure6a_shape(self):
        """Larger r shifts mass right: at fixed m, CDF decreases in r."""
        m = [25]
        values = [
            float(vicinity_size_cdf(1000, r, m)[0])
            for r in (0.02, 0.025, 0.033, 0.05, 0.1)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_paper_operating_point_logarithmic(self):
        """r = 0.03, n = 1000: expected vicinity ~ 14, O(log n)-ish."""
        expected = expected_vicinity_size(1000, 0.03)
        assert 10 < expected < 20
        # And almost surely below 40 (the "m logarithmic in n" argument).
        assert float(vicinity_size_cdf(1000, 0.03, [40])[0]) > 0.999

    def test_expected_matches_pmf_mean(self):
        pmf = vicinity_size_pmf(300, 0.05)
        mean = float(np.sum(np.arange(300) * pmf))
        assert expected_vicinity_size(300, 0.05) == pytest.approx(mean, rel=1e-9)


class TestIsolatedContainment:
    def test_matches_literal_double_sum(self):
        """The binomial-thinning collapse equals the paper's double sum."""
        n, r, tau, b = 120, 0.05, 3, 0.01
        q = vicinity_probability(r, 2, radius_factor=1.0)
        literal = 0.0
        for m in range(n):
            p_n = stats.binom.pmf(m, n - 1, q)
            for ell in range(tau + 1):
                literal += stats.binom.pmf(ell, m, b) * p_n
        assert isolated_containment_probability(n, r, tau, b) == pytest.approx(
            literal, rel=1e-10
        )

    def test_paper_figure6b_shape(self):
        """Containment decreases in n and increases in tau; the paper's
        operating point stays above 0.997 up to n = 15000."""
        for tau in (2, 3, 4, 5):
            values = [
                isolated_containment_probability(n, 0.03, tau, 0.005)
                for n in (1000, 5000, 10000, 15000)
            ]
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        by_tau = [
            isolated_containment_probability(15000, 0.03, tau, 0.005)
            for tau in (2, 3, 4, 5)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(by_tau, by_tau[1:]))
        assert by_tau[0] > 0.997  # the y-axis floor of Figure 6(b)

    def test_overflow_complement(self):
        args = (1000, 0.03, 3, 0.005)
        assert isolated_overflow_probability(*args) == pytest.approx(
            1.0 - isolated_containment_probability(*args)
        )

    def test_monte_carlo_agreement(self):
        """Closed form vs direct simulation of the generative story."""
        rng = np.random.default_rng(7)
        n, r, tau, b, trials = 400, 0.05, 2, 0.02, 4000
        overflow = 0
        for _ in range(trials):
            # Devices uniform; count impacted ones within 2r of the centre
            # device placed in the interior.
            positions = rng.random((n - 1, 2)) * 0.8 + 0.1
            center = np.array([0.5, 0.5])
            close = np.all(np.abs(positions - center) <= 2 * r, axis=1)
            impacted = rng.random(n - 1) < b
            if int(np.sum(close & impacted)) > tau:
                overflow += 1
        measured = overflow / trials
        # positions constrained to [0.1,0.9]^2 -> density 1/0.64 higher
        q = (4 * r / 0.8) ** 2
        expected = 1.0 - float(stats.binom.cdf(tau, n - 1, q * b))
        assert measured == pytest.approx(expected, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            isolated_containment_probability(100, 0.03, -1, 0.01)
        with pytest.raises(ConfigurationError):
            isolated_containment_probability(100, 0.03, 2, 1.5)


class TestRecommendation:
    def test_paper_operating_point_admissible(self):
        """(r=0.03, tau=3) must satisfy the paper's tuning criterion."""
        points = recommend_parameters(1000, 0.005, epsilon=1e-3)
        assert any(
            abs(p.r - 0.03) < 1e-9 and p.tau == 3 for p in points
        )

    def test_all_points_meet_epsilon(self):
        eps = 1e-4
        for point in recommend_parameters(2000, 0.005, epsilon=eps):
            assert point.overflow_probability < eps

    def test_sorted_by_vicinity(self):
        points = recommend_parameters(1000, 0.005)
        vicinities = [p.expected_vicinity for p in points]
        assert vicinities == sorted(vicinities)

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            recommend_parameters(1000, 0.005, epsilon=0.0)
