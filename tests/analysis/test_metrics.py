"""Tests for the evaluation metrics and aggregation helpers."""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import SummaryStat, series_table, summarize
from repro.analysis.metrics import (
    ConfusionCounts,
    MetricAccumulator,
    compute_step_metrics,
    confusion_against_truth,
    detection_accuracy,
)
from repro.io.synthetic import Incident
from repro.core.errors import ConfigurationError
from repro.core.types import (
    AnomalyType,
    Characterization,
    CostCounters,
    DecisionRule,
)


def verdict(device, anomaly, rule, **cost):
    return Characterization(
        device=device,
        anomaly_type=anomaly,
        rule=rule,
        cost=CostCounters(**cost),
    )


@pytest.fixture
def sample_results():
    return {
        0: verdict(0, AnomalyType.ISOLATED, DecisionRule.THEOREM_5, maximal_motions=2),
        1: verdict(1, AnomalyType.MASSIVE, DecisionRule.THEOREM_6, dense_motions=1),
        2: verdict(2, AnomalyType.MASSIVE, DecisionRule.THEOREM_6, dense_motions=3),
        3: verdict(
            3, AnomalyType.MASSIVE, DecisionRule.THEOREM_7, tested_collections=40
        ),
        4: verdict(
            4,
            AnomalyType.UNRESOLVED,
            DecisionRule.COROLLARY_8,
            tested_collections=10,
            total_collections=100,
        ),
    }


class TestStepMetrics:
    def test_counts(self, sample_results):
        metrics = compute_step_metrics(sample_results)
        assert metrics.flagged == 5
        assert metrics.isolated == 1
        assert metrics.massive_theorem6 == 2
        assert metrics.massive_theorem7 == 1
        assert metrics.massive == 3
        assert metrics.unresolved == 1

    def test_ratios(self, sample_results):
        metrics = compute_step_metrics(sample_results)
        assert metrics.unresolved_ratio == pytest.approx(0.2)
        assert metrics.fraction("isolated") == pytest.approx(0.2)
        assert metrics.fraction("massive") == pytest.approx(0.6)

    def test_empty(self):
        metrics = compute_step_metrics({})
        assert metrics.unresolved_ratio == 0.0
        assert metrics.fraction("massive") == 0.0


class TestConfusion:
    def test_confusion_counts(self, sample_results):
        truth = frozenset({1, 2, 4})  # 3 claimed massive but truly isolated
        confusion = confusion_against_truth(sample_results, truth)
        assert confusion.true_massive == 2
        assert confusion.false_massive == 1
        assert confusion.true_isolated == 1
        assert confusion.false_isolated == 0
        assert confusion.abstained == 1
        assert confusion.abstained_massive == 1

    def test_missed_detection_rate(self, sample_results):
        truth = frozenset({1, 2, 4})
        confusion = confusion_against_truth(sample_results, truth)
        assert confusion.missed_detection_rate == pytest.approx(1 / 5)

    def test_precision_recall(self):
        confusion = ConfusionCounts(
            true_massive=8,
            true_isolated=5,
            false_massive=2,
            false_isolated=1,
            abstained=4,
            abstained_massive=1,
        )
        assert confusion.massive_precision == pytest.approx(0.8)
        assert confusion.massive_recall == pytest.approx(0.8)

    def test_empty_edge_cases(self):
        confusion = ConfusionCounts(0, 0, 0, 0, 0)
        assert confusion.missed_detection_rate == 0.0
        assert confusion.massive_precision == 1.0
        assert confusion.massive_recall == 1.0


class TestAccumulator:
    def test_accumulates_across_steps(self, sample_results):
        acc = MetricAccumulator()
        acc.add_step(sample_results)
        acc.add_step(sample_results)
        assert acc.steps == 2
        assert acc.flagged == 10
        assert acc.massive == 6
        assert acc.mean_flagged == pytest.approx(5.0)
        assert acc.fraction("unresolved") == pytest.approx(0.2)

    def test_cost_averages(self, sample_results):
        acc = MetricAccumulator()
        acc.add_step(sample_results)
        assert acc.average_cost("isolated_maximal_motions") == pytest.approx(2.0)
        assert acc.average_cost("massive_dense_motions") == pytest.approx(4 / 3)
        assert acc.average_cost("unresolved_tested_collections") == pytest.approx(10.0)
        assert acc.average_cost("massive7_tested_collections") == pytest.approx(40.0)
        assert acc.average_cost("unresolved_total_collections") == pytest.approx(100.0)

    def test_false_massive_tracking(self, sample_results):
        acc = MetricAccumulator()
        acc.add_step(sample_results, truly_massive=frozenset({1}))
        # Devices 2 and 3 claimed massive but truly isolated.
        assert acc.false_massive == 2
        assert acc.fraction("false_massive") == pytest.approx(0.4)

    def test_empty_cost_average(self):
        acc = MetricAccumulator()
        assert acc.average_cost("isolated_maximal_motions") == 0.0


class TestSummarize:
    def test_mean_and_ci(self):
        stat = summarize([1.0, 2.0, 3.0, 4.0])
        assert stat.mean == pytest.approx(2.5)
        assert stat.count == 4
        assert stat.ci_half_width > 0

    def test_single_sample(self):
        stat = summarize([5.0])
        assert stat.mean == 5.0
        assert stat.ci_half_width == 0.0

    def test_ci_widens_with_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = summarize(data, confidence=0.8)
        wide = summarize(data, confidence=0.99)
        assert wide.ci_half_width > narrow.ci_half_width

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            summarize([1.0], confidence=1.5)

    def test_series_table_sorted(self):
        cells = {
            (2.0, 1.0): [0.1, 0.2],
            (1.0, 1.0): [0.3],
            (1.0, 0.0): [0.5, 0.6],
        }
        rows = series_table(cells)
        assert [(x, g) for x, g, _ in rows] == [(1.0, 0.0), (1.0, 1.0), (2.0, 1.0)]
        assert isinstance(rows[0][2], SummaryStat)


class TestDetectionAccuracy:
    """Flag-stream scoring against injected incident ground truth."""

    def test_perfect_detection(self):
        incidents = [Incident(start=2, duration=2, devices=(0, 1), service=0, drop=0.3)]
        flags = [[], [], [0, 1], [0, 1], []]
        acc = detection_accuracy(flags, incidents)
        assert acc.precision == 1.0
        assert acc.recall == 1.0
        assert acc.f1 == 1.0
        assert acc.incident_recall == 1.0
        assert acc.mean_latency == 0.0
        assert acc.true_positives == 4

    def test_late_partial_detection(self):
        incidents = [Incident(start=1, duration=3, devices=(0, 1), service=0, drop=0.3)]
        # Nothing at onset; only device 0 flagged from step 2 on.
        flags = [[], [], [0], [0], []]
        acc = detection_accuracy(flags, incidents)
        assert acc.true_positives == 2
        assert acc.false_negatives == 4  # (0,1)@1, 1@2, 1@3
        assert acc.false_positives == 0
        assert acc.precision == 1.0
        assert acc.recall == pytest.approx(2 / 6)
        assert acc.detected_incidents == 1
        assert acc.latencies == (1,)
        assert acc.mean_latency == 1.0

    def test_false_positives_counted(self):
        incidents = [Incident(start=1, duration=1, devices=(3,), service=0, drop=0.3)]
        flags = [[], [3, 5], [7]]
        acc = detection_accuracy(flags, incidents)
        assert acc.true_positives == 1
        assert acc.false_positives == 2  # 5@1 and 7@2
        assert acc.precision == pytest.approx(1 / 3)

    def test_undetected_incident(self):
        incidents = [
            Incident(start=0, duration=2, devices=(0,), service=0, drop=0.3),
            Incident(start=3, duration=1, devices=(1,), service=0, drop=0.3),
        ]
        flags = [[0], [0], [], []]
        acc = detection_accuracy(flags, incidents)
        assert acc.detected_incidents == 1
        assert acc.total_incidents == 2
        assert acc.incident_recall == 0.5
        assert acc.latencies == (0,)

    def test_warmup_excluded_from_device_steps(self):
        incidents = [Incident(start=0, duration=2, devices=(0,), service=0, drop=0.3)]
        # A warm-up false positive at step 0 must not be charged, but the
        # incident (detected at step 1) still counts.
        flags = [[4], [0], []]
        acc = detection_accuracy(flags, incidents, warmup_steps=1)
        assert acc.false_positives == 0
        assert acc.true_positives == 1
        assert acc.false_negatives == 0  # step 0 excluded
        assert acc.detected_incidents == 1
        assert acc.latencies == (1,)

    def test_empty_cases(self):
        acc = detection_accuracy([[], []], [])
        assert acc.precision == 1.0
        assert acc.recall == 1.0
        assert acc.incident_recall == 1.0
        assert acc.mean_latency == 0.0
        with pytest.raises(ConfigurationError):
            detection_accuracy([[]], [], warmup_steps=-1)

    def test_as_dict_round_trip(self):
        incidents = [Incident(start=0, duration=1, devices=(0,), service=0, drop=0.3)]
        payload = detection_accuracy([[0]], incidents).as_dict()
        assert payload["precision"] == 1.0
        assert payload["detected_incidents"] == 1
        assert payload["total_incidents"] == 1
