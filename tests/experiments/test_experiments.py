"""Smoke and shape tests for the experiment harness.

Each experiment is run at reduced scale; we assert structural properties
and the coarse paper shapes that must hold even with few samples.  The
full-scale regenerations live in ``benchmarks/`` and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_locality,
    ablation_malicious,
    ablation_sampling,
    ablation_tessellation,
    ablation_theorem7,
    figure6a,
    figure6b,
    figure7,
    figure8,
    figure9,
    table2,
    table3,
)
from repro.io.records import ExperimentResult


SMALL_N = 500


class TestFigure6a:
    def test_rows_and_columns(self):
        result = figure6a.run(n=200, radii=(0.05, 0.02), m_max=50, m_step=10)
        assert result.experiment_id == "figure6a"
        assert set(result.columns) >= {"r", "m", "cdf"}
        assert len(result.rows) == 2 * 6

    def test_cdf_monotone_per_radius(self):
        result = figure6a.run(n=500, radii=(0.03,), m_max=100, m_step=5)
        cdf = result.column("cdf")
        assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))

    def test_larger_r_larger_vicinity(self):
        result = figure6a.run(n=500, radii=(0.02, 0.1), m_max=10, m_step=10)
        by_r = {row["r"]: row["expected_vicinity"] for row in result.rows}
        assert by_r[0.1] > by_r[0.02]


class TestFigure6b:
    def test_structure(self):
        result = figure6b.run(taus=(2, 3), n_max=4000, n_step=1000)
        assert result.experiment_id == "figure6b"
        assert len(result.rows) == 2 * 4

    def test_containment_decreases_in_n(self):
        result = figure6b.run(taus=(3,), n_max=15000, n_step=5000)
        values = result.column("containment")
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_paper_floor(self):
        """All curves stay above the paper's 0.997 y-axis floor."""
        result = figure6b.run(taus=(2, 3, 4, 5), n_max=15000, n_step=5000)
        assert min(result.column("containment")) > 0.997


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(steps=2, seeds=(0,), n=SMALL_N, errors_per_step=10)

    def test_five_rows(self, result):
        assert len(result.rows) == 5
        assert result.experiment_id == "table2"

    def test_fractions_sum_to_one(self, result):
        fractions = {
            row["set"]: row["measured_percent"] for row in result.rows
        }
        total = (
            fractions["I_k (Theorem 5)"]
            + fractions["M_k (Theorem 6)"]
            + fractions["U_k (Corollary 8)"]
            + fractions["M_k extra (Theorem 7)"]
        )
        assert total == pytest.approx(100.0, abs=1e-6)

    def test_massive_dominates_in_massive_heavy_mix(self, result):
        fractions = {row["set"]: row["measured_percent"] for row in result.rows}
        assert fractions["M_k (Theorem 6)"] > 50.0


class TestTable3:
    def test_cost_ordering(self):
        result = table3.run(
            steps=2,
            seeds=(0,),
            n=SMALL_N,
            errors_per_step=10,
            collection_count_cap=50_000,
        )
        costs = {row["cost"]: row["measured"] for row in result.rows}
        cheap = costs["I_k: maximal motions"]
        dense = costs["M_k (Th6): maximal dense motions"]
        tested = costs["U_k: tested collections"]
        # The paper's headline: the exact search costs orders of magnitude
        # more than the cheap conditions.
        assert cheap < 20
        assert dense < 20
        if tested:
            assert tested >= dense


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(
            steps=2,
            seeds=(0,),
            a_values=(1, 20),
            g_values=(0.0, 1.0),
            n=SMALL_N,
        )

    def test_grid_complete(self, result):
        assert len(result.rows) == 4
        assert {row["A"] for row in result.rows} == {1, 20}

    def test_single_error_never_unresolved(self, result):
        """The paper: 'when a single error is generated then no
        unresolved configurations exists'."""
        for row in result.rows:
            if row["A"] == 1:
                assert row["unresolved_ratio_percent"] == 0.0

    def test_massive_mix_worst(self, result):
        at_20 = {row["G"]: row["unresolved_ratio_percent"] for row in result.rows if row["A"] == 20}
        assert at_20[0.0] >= at_20[1.0]


class TestFigure8:
    def test_missed_detection_bounded(self):
        result = figure8.run(
            steps=2,
            seeds=(0,),
            a_values=(10, 30),
            g_values=(0.5,),
            n=SMALL_N,
        )
        for row in result.rows:
            assert 0.0 <= row["missed_detection_percent"] < 20.0

    def test_relaxed_mode_produces_missed_detections(self):
        result = figure8.run(
            steps=3,
            seeds=(0, 1),
            a_values=(30,),
            g_values=(0.5,),
            n=SMALL_N,
        )
        assert any(row["missed_detection_percent"] > 0 for row in result.rows)


class TestFigure9:
    def test_same_shape_as_figure7(self):
        result = figure9.run(
            steps=2, seeds=(0,), a_values=(1, 20), g_values=(0.0,), n=SMALL_N
        )
        assert result.experiment_id == "figure9"
        assert len(result.rows) == 2
        for row in result.rows:
            if row["A"] == 1:
                assert row["unresolved_ratio_percent"] == 0.0


class TestAblations:
    def test_tessellation_dilemma(self):
        result = ablation_tessellation.run(
            steps=2,
            seeds=(0,),
            bucket_factors=(1.0, 16.0),
            n=SMALL_N,
            errors_per_step=10,
        )
        rows = {row["method"]: row for row in result.rows}
        ours = rows["local characterization"]
        small = rows["tessellation 1r"]
        large = rows["tessellation 16r"]
        # Small buckets split genuine groups (false isolated); our method
        # must be strictly better on that axis.
        assert small["false_isolated_percent"] >= ours["false_isolated_percent"]
        # Large buckets over-merge (false massive).
        assert large["false_massive_percent"] >= ours["false_massive_percent"]

    def test_theorem7_ablation_consistency(self):
        result = ablation_theorem7.run(
            steps=2, seeds=(0,), n=SMALL_N, errors_per_step=10
        )
        values = {row["quantity"]: row["value"] for row in result.rows}
        recovered = values["recovered massive by Th.7 (% of A_k)"]
        confirmed = values["confirmed unresolved by Cor.8 (% of A_k)"]
        unresolved = values["cheap-path unresolved (% of A_k)"]
        assert recovered + confirmed == pytest.approx(unresolved, abs=1e-9)

    def test_locality_match_is_total(self):
        result = ablation_locality.run(steps=1, seeds=(0,), n=300, errors_per_step=8)
        values = {row["quantity"]: row["value"] for row in result.rows}
        assert values["disagreements"] == 0
        assert values["match rate percent"] == pytest.approx(100.0)


class TestSamplingAblation:
    def test_rows_and_load_split(self):
        result = ablation_sampling.run(
            a_total=20, multipliers=(1, 4), steps=1, seeds=(0,), n=SMALL_N
        )
        rows = {row["multiplier"]: row for row in result.rows}
        assert rows[1]["errors_per_interval"] == 20
        assert rows[4]["errors_per_interval"] == 5
        for row in result.rows:
            assert 0.0 <= row["unresolved_ratio_percent"] <= 100.0

    def test_fast_sampling_not_worse(self):
        result = ablation_sampling.run(
            a_total=40, multipliers=(1, 8), steps=2, seeds=(0, 1), n=1000
        )
        rows = {row["multiplier"]: row for row in result.rows}
        assert (
            rows[8]["unresolved_ratio_percent"]
            <= rows[1]["unresolved_ratio_percent"] + 1.0
        )


class TestMaliciousAblation:
    def test_naive_fooled_robust_not(self):
        result = ablation_malicious.run(
            forged_counts=(3,), steps=1, seeds=(0, 1), n=SMALL_N
        )
        (row,) = result.rows
        if row["victims_attacked"]:
            assert row["robust_suppression_percent"] == 0.0
            assert row["naive_suppression_percent"] >= row["robust_suppression_percent"]


class TestResultHygiene:
    @pytest.mark.parametrize(
        "module,kwargs",
        [
            (figure6a, dict(n=100, radii=(0.05,), m_max=20, m_step=10)),
            (figure6b, dict(taus=(3,), n_max=2000, n_step=1000)),
        ],
    )
    def test_json_roundtrip(self, module, kwargs):
        result = module.run(**kwargs)
        parsed = ExperimentResult.from_json(result.to_json())
        assert parsed.rows == result.rows
