"""Tests for synthetic trace generation and replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.types import AnomalyType
from repro.detection import CusumDetector, DetectorSpec, StepThresholdDetector
from repro.io import Incident, TraceConfig, generate_trace, replay_trace
from repro.io.traces import read_trace, write_trace


class TestIncident:
    def test_active_window(self):
        incident = Incident(start=5, duration=3, devices=(0,), service=0, drop=0.3)
        assert not incident.active_at(4)
        assert incident.active_at(5)
        assert incident.active_at(7)
        assert not incident.active_at(8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(start=-1, duration=1, devices=(0,), service=0, drop=0.3),
            dict(start=0, duration=0, devices=(0,), service=0, drop=0.3),
            dict(start=0, duration=1, devices=(), service=0, drop=0.3),
            dict(start=0, duration=1, devices=(0,), service=0, drop=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            Incident(**kwargs)


class TestGenerateTrace:
    def test_shape_and_range(self):
        config = TraceConfig(devices=20, services=2, steps=30, seed=1)
        trace = generate_trace(config)
        assert len(trace) == 30
        for step in trace:
            assert step.qos.shape == (20, 2)
            assert step.qos.min() >= 0.0
            assert step.qos.max() <= 1.0

    def test_diurnal_cycle_visible(self):
        config = TraceConfig(
            devices=5, steps=48, diurnal_period=24, diurnal_amplitude=0.1,
            noise_sigma=0.0, phase_jitter=0.0,
        )
        trace = generate_trace(config)
        series = [float(step.qos[0, 0]) for step in trace]
        assert max(series) - min(series) == pytest.approx(0.1, abs=1e-6)

    def test_incident_applied(self):
        config = TraceConfig(devices=10, steps=20, noise_sigma=0.0, seed=2)
        incident = Incident(start=10, duration=2, devices=(3, 4), service=1, drop=0.4)
        trace = generate_trace(config, [incident])
        before = trace[9].qos
        during = trace[10].qos
        assert during[3, 1] < before[3, 1] - 0.3
        assert during[3, 0] == pytest.approx(before[3, 0], abs=0.05)

    def test_unknown_target_rejected(self):
        config = TraceConfig(devices=5, services=2, steps=10)
        with pytest.raises(ConfigurationError):
            generate_trace(
                config,
                [Incident(start=0, duration=1, devices=(9,), service=0, drop=0.2)],
            )
        with pytest.raises(ConfigurationError):
            generate_trace(
                config,
                [Incident(start=0, duration=1, devices=(0,), service=5, drop=0.2)],
            )

    def test_deterministic_under_seed(self):
        config = TraceConfig(devices=8, steps=12, seed=7)
        a = generate_trace(config)
        b = generate_trace(config)
        assert all(np.allclose(x.qos, y.qos) for x, y in zip(a, b))

    def test_serialization_roundtrip(self):
        trace = generate_trace(TraceConfig(devices=4, steps=6))
        parsed = read_trace(write_trace(trace))
        assert len(parsed) == 6
        assert np.allclose(parsed[3].qos, trace[3].qos)


class TestReplay:
    def test_quiet_trace_produces_no_flags(self):
        trace = generate_trace(TraceConfig(devices=20, steps=30, seed=3))
        results = replay_trace(
            trace, lambda: StepThresholdDetector(max_step=0.12), tau=3
        )
        assert all(not r.flagged for r in results)

    def test_massive_incident_characterized(self):
        config = TraceConfig(devices=40, steps=24, seed=4)
        incident = Incident(
            start=12, duration=4, devices=tuple(range(8)), service=0, drop=0.4
        )
        trace = generate_trace(config, [incident])
        results = replay_trace(
            trace, lambda: StepThresholdDetector(max_step=0.12), tau=3
        )
        onset = results[12]
        assert sorted(onset.flagged) == list(range(8))
        assert all(
            onset.verdicts[d].anomaly_type is AnomalyType.MASSIVE for d in range(8)
        )

    def test_isolated_incident_characterized(self):
        config = TraceConfig(devices=40, steps=24, seed=5)
        incident = Incident(start=12, duration=4, devices=(17,), service=1, drop=0.5)
        trace = generate_trace(config, [incident])
        results = replay_trace(
            trace, lambda: StepThresholdDetector(max_step=0.12), tau=3
        )
        onset = results[12]
        assert onset.flagged == [17]
        assert onset.verdicts[17].anomaly_type is AnomalyType.ISOLATED

    def test_cusum_catches_gradual_incident(self):
        config = TraceConfig(devices=30, steps=40, noise_sigma=0.002, seed=6,
                             diurnal_amplitude=0.0)
        incident = Incident(
            start=20, duration=15, devices=tuple(range(6)), service=0, drop=0.06
        )
        trace = generate_trace(config, [incident])
        results = replay_trace(
            trace,
            lambda: CusumDetector(threshold=0.08, drift=0.004, warmup=6),
            tau=3,
        )
        flagged_any = [r for r in results if r.flagged]
        assert flagged_any, "CUSUM must accumulate the small persistent drop"
        assert set(flagged_any[0].flagged) <= set(range(6))

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            replay_trace([], lambda: StepThresholdDetector(max_step=0.1))


class TestDetectionPlanes:
    """replay_trace routes detection through banks; planes agree."""

    def _trace(self):
        config = TraceConfig(devices=30, steps=20, seed=8)
        incidents = [
            Incident(start=8, duration=3, devices=tuple(range(6)), service=0, drop=0.35),
            Incident(start=14, duration=2, devices=(22,), service=1, drop=0.5),
        ]
        return generate_trace(config, incidents)

    def test_bank_and_scalar_planes_identical(self):
        trace = self._trace()
        spec = DetectorSpec("step", {"max_step": 0.12})
        bank = replay_trace(trace, detector=spec, tau=3)
        scalar = replay_trace(trace, detector=spec, detection="scalar", tau=3)
        for got, want in zip(bank, scalar):
            assert got.flagged == want.flagged
            assert {
                d: v.anomaly_type for d, v in got.verdicts.items()
            } == {d: v.anomaly_type for d, v in want.verdicts.items()}

    def test_legacy_factory_matches_spec(self):
        trace = self._trace()
        legacy = replay_trace(
            trace, lambda: StepThresholdDetector(max_step=0.12), tau=3
        )
        spec = replay_trace(
            trace, detector=DetectorSpec("step", {"max_step": 0.12}), tau=3
        )
        assert [r.flagged for r in legacy] == [r.flagged for r in spec]

    def test_default_detector_is_step_4r(self):
        trace = self._trace()
        default = replay_trace(trace, r=0.03, tau=3)
        explicit = replay_trace(
            trace, detector=DetectorSpec("step", {"max_step": 0.12}), tau=3
        )
        assert [r.flagged for r in default] == [r.flagged for r in explicit]

    def test_factory_and_spec_conflict_rejected(self):
        trace = self._trace()
        with pytest.raises(ConfigurationError):
            replay_trace(
                trace,
                lambda: StepThresholdDetector(max_step=0.1),
                detector=DetectorSpec("step", {"max_step": 0.1}),
            )
        with pytest.raises(ConfigurationError):
            replay_trace(
                trace,
                lambda: StepThresholdDetector(max_step=0.1),
                detection="bank",
            )
