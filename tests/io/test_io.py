"""Tests for records, rendering and trace serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import TraceFormatError
from repro.io import (
    ExperimentResult,
    TraceStep,
    read_trace,
    render_series,
    render_table,
    trace_to_arrays,
    write_trace,
)


@pytest.fixture
def sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="demo",
        title="Demo result",
        parameters={"n": 10},
    )
    result.add_row(x=1, y=0.5, label="a")
    result.add_row(x=2, y=0.75, label="b")
    return result


class TestExperimentResult:
    def test_columns_grow_with_rows(self, sample_result):
        sample_result.add_row(x=3, z=9)
        assert sample_result.columns == ["x", "y", "label", "z"]
        assert sample_result.rows[-1] == {"x": 3, "z": 9}

    def test_column_extraction(self, sample_result):
        assert sample_result.column("y") == [0.5, 0.75]
        sample_result.add_row(x=3)
        assert sample_result.column("y") == [0.5, 0.75, None]

    def test_json_roundtrip(self, sample_result):
        text = sample_result.to_json()
        parsed = ExperimentResult.from_json(text)
        assert parsed.experiment_id == "demo"
        assert parsed.rows == sample_result.rows
        assert parsed.parameters == {"n": 10}

    def test_bad_json_rejected(self):
        with pytest.raises(TraceFormatError):
            ExperimentResult.from_json("{}")
        with pytest.raises(TraceFormatError):
            ExperimentResult.from_json("not json")

    def test_csv(self, sample_result):
        csv = sample_result.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "x,y,label"
        assert lines[1] == "1,0.5,a"

    def test_csv_escaping(self):
        result = ExperimentResult(experiment_id="e", title="t")
        result.add_row(name='contains "quotes", commas')
        assert '"contains ""quotes"", commas"' in result.to_csv()


class TestRendering:
    def test_table_contains_all_cells(self, sample_result):
        text = render_table(sample_result)
        assert "Demo result" in text
        assert "0.75" in text
        assert "label" in text

    def test_series_chart(self, sample_result):
        chart = render_series(sample_result, x="x", y="y")
        assert "y vs x" in chart
        assert "|" in chart

    def test_series_with_group(self, sample_result):
        chart = render_series(sample_result, x="x", y="y", group="label")
        assert "label=a" in chart
        assert "label=b" in chart

    def test_series_empty(self):
        result = ExperimentResult(experiment_id="e", title="t")
        assert render_series(result, x="x", y="y") == "(no data)"


class TestTraces:
    def test_roundtrip(self):
        steps = [
            TraceStep(step=0, qos=np.array([[0.9, 0.8], [0.7, 0.6]])),
            TraceStep(step=1, qos=np.array([[0.91, 0.79], [0.71, 0.59]])),
        ]
        text = write_trace(steps)
        parsed = read_trace(text)
        assert len(parsed) == 2
        assert parsed[1].step == 1
        assert np.allclose(parsed[0].qos, steps[0].qos)

    def test_shape_consistency_enforced(self):
        text = (
            '{"step": 0, "qos": [[0.5, 0.5]]}\n'
            '{"step": 1, "qos": [[0.5, 0.5], [0.4, 0.4]]}\n'
        )
        with pytest.raises(TraceFormatError):
            read_trace(text)

    def test_malformed_line_reported_with_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            read_trace('{"step": 0, "qos": [[0.5]]}\nbroken\n')

    def test_blank_lines_skipped(self):
        text = '{"step": 0, "qos": [[0.5]]}\n\n'
        assert len(read_trace(text)) == 1

    def test_to_arrays(self):
        steps = [
            TraceStep(step=k, qos=np.full((3, 2), 0.1 * k)) for k in range(4)
        ]
        arr = trace_to_arrays(steps)
        assert arr.shape == (4, 3, 2)

    def test_to_arrays_empty(self):
        with pytest.raises(TraceFormatError):
            trace_to_arrays([])

    def test_bad_qos_shape(self):
        with pytest.raises(TraceFormatError):
            TraceStep(step=0, qos=np.array([0.5, 0.6]))

    def test_empty_trace_roundtrip(self):
        assert write_trace([]) == ""
        assert read_trace("") == []
