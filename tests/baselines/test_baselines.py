"""Tests for the tessellation and centralized-clustering baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CentralizedClusteringMonitor,
    TessellationDetector,
    kmeans,
    kmeans_sweep,
)
from repro.core.errors import ConfigurationError
from repro.core.types import AnomalyType
from tests.conftest import make_transition_1d


class TestKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(0.2, 0.01, (30, 2))
        blob_b = rng.normal(0.8, 0.01, (30, 2))
        points = np.vstack([blob_a, blob_b])
        result = kmeans(points, 2, seed=1)
        labels_a = set(result.labels[:30].tolist())
        labels_b = set(result.labels[30:].tolist())
        assert len(labels_a) == 1
        assert len(labels_b) == 1
        assert labels_a != labels_b

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(1)
        points = rng.random((60, 2))
        results = kmeans_sweep(points, (1, 2, 4, 8), seed=0)
        inertias = [r.inertia for r in results]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_m_zero_inertia(self):
        points = np.random.default_rng(2).random((5, 2))
        result = kmeans(points, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_cluster_sizes_sum(self):
        points = np.random.default_rng(3).random((40, 3))
        result = kmeans(points, 4, seed=0)
        assert result.cluster_sizes().sum() == 40

    def test_deterministic_under_seed(self):
        points = np.random.default_rng(4).random((50, 2))
        a = kmeans(points, 3, seed=9)
        b = kmeans(points, 3, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            kmeans(np.zeros((3, 2)), 0)
        with pytest.raises(ConfigurationError):
            kmeans(np.zeros((3, 2)), 4)
        with pytest.raises(ConfigurationError):
            kmeans(np.zeros(3), 1)

    def test_duplicate_points_handled(self):
        points = np.tile(np.array([[0.5, 0.5]]), (10, 1))
        result = kmeans(points, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)


class TestTessellation:
    def test_co_bucketed_blob_is_massive(self):
        pairs = [(0.501, 0.701)] * 5 + [(0.9, 0.1)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        detector = TessellationDetector(t, bucket_side=0.06)
        verdicts = detector.classify_all()
        for device in range(5):
            assert verdicts[device].anomaly_type is AnomalyType.MASSIVE
        assert verdicts[5].anomaly_type is AnomalyType.ISOLATED

    def test_straddling_group_misclassified(self):
        """The false-alarm failure mode: a genuine co-moving group that
        straddles a bucket border looks isolated to the tessellation."""
        # Group of 5 centred exactly on the bucket boundary 0.5.
        pairs = [(0.49, 0.49), (0.495, 0.495), (0.5, 0.5), (0.505, 0.505), (0.51, 0.51)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        detector = TessellationDetector(t, bucket_side=0.5)
        verdicts = detector.classify_all()
        # Wait: bucket side 0.5 puts boundary at 0.5, splitting the group.
        assert any(
            v.anomaly_type is AnomalyType.ISOLATED for v in verdicts.values()
        )

    def test_large_buckets_merge_unrelated_devices(self):
        """The false-massive failure mode: unrelated isolated devices in
        one giant bucket count as a massive anomaly."""
        pairs = [(0.1, 0.1), (0.2, 0.3), (0.3, 0.2), (0.35, 0.4), (0.05, 0.45)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        detector = TessellationDetector(t, bucket_side=0.5)
        verdicts = detector.classify_all()
        assert all(
            v.anomaly_type is AnomalyType.MASSIVE for v in verdicts.values()
        )
        # Our method correctly keeps them isolated.
        from repro.core.characterize import characterize_transition

        ours = characterize_transition(t)
        assert all(v.is_isolated for v in ours.values())

    def test_bucket_population_reported(self):
        pairs = [(0.501, 0.701)] * 4
        t = make_transition_1d(pairs, r=0.03, tau=3)
        verdict = TessellationDetector(t, bucket_side=0.06).classify(0)
        assert verdict.bucket_population == 4

    def test_bucket_side_validation(self):
        t = make_transition_1d([(0.5, 0.5)], r=0.03, tau=1, flagged=[0])
        with pytest.raises(ConfigurationError):
            TessellationDetector(t, bucket_side=0.0)
        with pytest.raises(ConfigurationError):
            TessellationDetector(t, bucket_side=1.5)


class TestCentralized:
    def test_separated_blob_and_stragglers(self):
        pairs = [(0.3, 0.8)] * 6 + [(0.05, 0.1), (0.9, 0.4)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        monitor = CentralizedClusteringMonitor(t, k=3, seed=0)
        verdicts = monitor.classify_all()
        massive = [d for d, v in verdicts.items() if v.anomaly_type is AnomalyType.MASSIVE]
        assert set(massive) == set(range(6))

    def test_consistency_check_blocks_wide_clusters(self):
        # Five devices spread far apart: a forced single cluster would be
        # "massive" by size, but the consistency check vetoes it.
        pairs = [(0.1, 0.1), (0.3, 0.3), (0.5, 0.5), (0.7, 0.7), (0.9, 0.9)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        monitor = CentralizedClusteringMonitor(t, k=1, seed=0)
        verdicts = monitor.classify_all()
        assert all(
            v.anomaly_type is AnomalyType.ISOLATED for v in verdicts.values()
        )

    def test_without_consistency_check_wide_cluster_is_massive(self):
        pairs = [(0.1, 0.1), (0.3, 0.3), (0.5, 0.5), (0.7, 0.7), (0.9, 0.9)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        monitor = CentralizedClusteringMonitor(
            t, k=1, enforce_consistency=False, seed=0
        )
        verdicts = monitor.classify_all()
        assert all(
            v.anomaly_type is AnomalyType.MASSIVE for v in verdicts.values()
        )

    def test_default_k(self):
        pairs = [(0.1 * i, 0.1 * i) for i in range(1, 9)]
        t = make_transition_1d(pairs, r=0.03, tau=3)
        monitor = CentralizedClusteringMonitor(t, seed=0)
        assert monitor.k == 2  # ceil(8 / 4)

    def test_upload_cost_counts_all_flagged(self):
        pairs = [(0.2, 0.2)] * 5
        t = make_transition_1d(pairs, r=0.03, tau=3)
        monitor = CentralizedClusteringMonitor(t, seed=0)
        assert monitor.messages_uploaded == 5

    def test_no_flagged_rejected(self):
        t = make_transition_1d([(0.5, 0.5), (0.6, 0.6)], r=0.03, tau=1, flagged=[])
        with pytest.raises(ConfigurationError):
            CentralizedClusteringMonitor(t)
