"""MetricsSink transition counting and ReportSink bounding.

The sinks consume :class:`OnlineTick` values, so the edge cases are
drivable with fabricated ticks: a device that re-flags after a quiet
spell must count as a *new* event, and a device that leaves the flagged
set must stop accruing device-ticks immediately.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.types import AnomalyType, Characterization, DecisionRule
from repro.obs.metrics import Registry, get_registry
from repro.online import MetricsSink, OnlineTick, ReportSink


def _tick(number: int, verdicts: dict) -> OnlineTick:
    built = {
        device: Characterization(
            device=device, anomaly_type=kind, rule=DecisionRule.THEOREM_5
        )
        for device, kind in verdicts.items()
    }
    return OnlineTick(
        tick=number,
        applied=0,
        flagged=tuple(sorted(built)),
        recomputed=tuple(sorted(built)),
        reused=(),
        dirty_cells=0,
        verdicts=built,
    )


def _counter_value(registry, name: str, kind: str) -> float:
    snap = registry.snapshot().get(name)
    if snap is None:
        return 0.0
    for sample in snap["samples"]:
        if sample["labels"] == {"kind": kind}:
            return sample["value"]
    return 0.0


class TestTransitionCounting:
    def test_steady_verdict_counts_once(self):
        sink = MetricsSink()
        for k in range(1, 6):
            sink(_tick(k, {7: AnomalyType.ISOLATED}))
        assert sink.verdict_counts["isolated"] == 1
        assert sink.verdict_tick_counts["isolated"] == 5

    def test_reflag_after_quiet_spell_is_a_new_event(self):
        sink = MetricsSink()
        sink(_tick(1, {7: AnomalyType.ISOLATED}))
        sink(_tick(2, {}))  # quiet spell: device 7 unflagged
        sink(_tick(3, {7: AnomalyType.ISOLATED}))
        assert sink.verdict_counts["isolated"] == 2
        assert sink.verdict_tick_counts["isolated"] == 2

    def test_device_leave_stops_device_ticks(self):
        sink = MetricsSink()
        sink(_tick(1, {7: AnomalyType.MASSIVE, 9: AnomalyType.MASSIVE}))
        sink(_tick(2, {9: AnomalyType.MASSIVE}))  # device 7 left
        sink(_tick(3, {9: AnomalyType.MASSIVE}))
        assert sink.verdict_counts["massive"] == 2  # one event per device
        assert sink.verdict_tick_counts["massive"] == 4  # 2 + 1 + 1

    def test_kind_change_is_a_transition(self):
        sink = MetricsSink()
        sink(_tick(1, {7: AnomalyType.ISOLATED}))
        sink(_tick(2, {7: AnomalyType.MASSIVE}))
        assert sink.verdict_counts["isolated"] == 1
        assert sink.verdict_counts["massive"] == 1

    def test_registry_mirrors_both_counters(self):
        reg = Registry()
        sink = MetricsSink(registry=reg)
        sink(_tick(1, {7: AnomalyType.ISOLATED}))
        sink(_tick(2, {}))
        sink(_tick(3, {7: AnomalyType.ISOLATED}))
        assert _counter_value(
            reg, "repro_verdict_transitions_total", "isolated"
        ) == 2.0
        assert _counter_value(
            reg, "repro_verdict_device_ticks_total", "isolated"
        ) == 2.0

    def test_defaults_to_global_registry(self):
        sink = MetricsSink()
        sink(_tick(1, {3: AnomalyType.UNRESOLVED}))
        assert _counter_value(
            get_registry(), "repro_verdict_transitions_total", "unresolved"
        ) == 1.0


class TestReportSinkBounding:
    def test_drop_oldest_and_dropped_counter(self):
        sink = ReportSink(max_rows=3)
        for k in range(1, 6):
            sink(_tick(k, {1: AnomalyType.ISOLATED}))
        assert len(sink.rows) == 3
        assert sink.dropped == 2
        # Oldest rows were evicted: the survivors are ticks 3..5.
        assert [row[0] for row in sink.rows] == [3, 4, 5]

    def test_unbounded_when_max_rows_none(self):
        sink = ReportSink(max_rows=None)
        for k in range(1, 6):
            sink(_tick(k, {1: AnomalyType.ISOLATED}))
        assert len(sink.rows) == 5
        assert sink.dropped == 0

    def test_max_rows_validated(self):
        with pytest.raises(ConfigurationError):
            ReportSink(max_rows=0)

    def test_drops_mirrored_to_registry(self):
        reg = Registry()
        sink = ReportSink(max_rows=1, registry=reg)
        sink(_tick(1, {1: AnomalyType.ISOLATED}))
        sink(_tick(2, {1: AnomalyType.ISOLATED}))
        snap = reg.snapshot()["repro_report_rows_dropped_total"]
        assert snap["samples"][0]["value"] == 1.0

    def test_kind_filter_still_applies(self):
        sink = ReportSink(kinds=(AnomalyType.MASSIVE,), max_rows=10)
        sink(_tick(1, {1: AnomalyType.ISOLATED, 2: AnomalyType.MASSIVE}))
        assert [row[1] for row in sink.rows] == [2]
