"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs.metrics import _reset_global_registry


@pytest.fixture(autouse=True)
def fresh_registry():
    """Give every test its own process-global registry.

    ServiceStats / MetricsSink / Tracer default to the global registry;
    without isolation one test's counters leak into the next's
    snapshots.
    """
    _reset_global_registry()
    yield
    _reset_global_registry()
