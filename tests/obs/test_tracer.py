"""Stage spans: nesting, drain semantics, the disabled null path, and
the service integration (every OnlineTick carries its own breakdown).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import Registry, get_registry
from repro.obs.trace import STAGE_HISTOGRAM, Tracer, get_tracer
from repro.online import (
    LoadGenerator,
    LoadProfile,
    OnlineCharacterizationService,
    ServiceConfig,
    drive_load,
)


def _stage_count(registry: Registry, stage: str) -> int:
    snap = registry.snapshot().get(STAGE_HISTOGRAM)
    if snap is None:
        return 0
    for sample in snap["samples"]:
        if sample["labels"] == {"stage": stage}:
            return sample["count"]
    return 0


class TestSpans:
    def test_span_records_into_accumulator_and_histogram(self):
        reg = Registry()
        tracer = Tracer(reg)
        with tracer.span("detect"):
            pass
        stages = tracer.drain_stages()
        assert set(stages) == {"detect"}
        assert stages["detect"] >= 0.0
        assert _stage_count(reg, "detect") == 1

    def test_spans_nest_and_parent_includes_child(self):
        reg = Registry()
        tracer = Tracer(reg)
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        assert tracer.depth == 0
        stages = tracer.drain_stages()
        # Stages keep their own (leaf) names; the parent's time includes
        # the child's.
        assert set(stages) == {"outer", "inner"}
        assert stages["outer"] >= stages["inner"]

    def test_same_stage_accumulates_between_drains(self):
        tracer = Tracer(Registry())
        for _ in range(3):
            with tracer.span("ingest-drain"):
                pass
        assert _stage_count(tracer.registry, "ingest-drain") == 3
        stages = tracer.drain_stages()
        assert set(stages) == {"ingest-drain"}

    def test_drain_resets(self):
        tracer = Tracer(Registry())
        with tracer.span("a"):
            pass
        assert tracer.drain_stages() != {}
        assert tracer.drain_stages() == {}

    def test_span_exposes_seconds(self):
        tracer = Tracer(Registry())
        with tracer.span("timed") as span:
            pass
        assert span.seconds >= 0.0


class TestDisabledTracer:
    def test_null_span_is_shared_and_records_nothing(self):
        reg = Registry()
        tracer = Tracer(reg, enabled=False)
        first = tracer.span("detect")
        second = tracer.span("verdict")
        assert first is second  # one shared no-op object, no allocation
        with first:
            pass
        assert tracer.drain_stages() == {}
        assert _stage_count(reg, "detect") == 0

    def test_null_span_seconds_is_zero(self):
        tracer = Tracer(Registry(), enabled=False)
        with tracer.span("x") as span:
            pass
        assert span.seconds == 0.0


class TestGlobalTracer:
    def test_follows_global_registry_swap(self):
        tracer = get_tracer()
        assert tracer.registry is get_registry()
        assert get_tracer() is tracer


class TestServiceIntegration:
    def _service(self, **kwargs):
        generator = LoadGenerator(LoadProfile(devices=150, churn=0.1, seed=3))
        service = OnlineCharacterizationService(
            generator.initial_positions(),
            ServiceConfig(r=0.05, tau=2),
            **kwargs,
        )
        return service, generator

    def test_ticks_carry_their_own_stage_seconds(self):
        service, generator = self._service()
        result = drive_load(service, generator, 4)
        for tick in result.ticks:
            assert "dirty-region" in tick.stage_seconds
            assert "ingest" in tick.stage_seconds
            assert all(v >= 0.0 for v in tick.stage_seconds.values())
        flagged_ticks = [t for t in result.ticks if t.recomputed]
        assert flagged_ticks, "load profile should flag someone"
        for tick in flagged_ticks:
            assert "transition-build" in tick.stage_seconds
            assert "verdict" in tick.stage_seconds
        # The accumulator is fully drained between ticks.
        assert service.tracer.drain_stages() == {}

    def test_sinks_stage_folded_into_tick(self):
        service, generator = self._service()
        service.add_sink(lambda tick: None)
        result = drive_load(service, generator, 2)
        for tick in result.ticks:
            assert "sinks" in tick.stage_seconds

    def test_run_level_breakdown_sums_ticks(self):
        service, generator = self._service()
        result = drive_load(service, generator, 3)
        totals = result.stage_seconds
        assert totals["dirty-region"] == pytest.approx(
            sum(t.stage_seconds.get("dirty-region", 0.0) for t in result.ticks)
        )

    def test_disabled_tracer_yields_empty_breakdowns(self):
        service, generator = self._service(tracer=Tracer(enabled=False))
        result = drive_load(service, generator, 3)
        assert all(t.stage_seconds == {} for t in result.ticks)
        assert result.stage_seconds == {}
        # elapsed_seconds falls back to a direct clock, not the tracer.
        assert result.elapsed_seconds > 0.0

    def test_stage_histogram_reaches_global_registry(self):
        service, generator = self._service()
        drive_load(service, generator, 2)
        assert _stage_count(get_registry(), "dirty-region") == 2

    def test_verdicts_identical_with_and_without_tracing(self):
        on, gen_on = self._service()
        off, gen_off = self._service(tracer=Tracer(enabled=False))
        ticks_on = drive_load(on, gen_on, 5).ticks
        ticks_off = drive_load(off, gen_off, 5).ticks
        for a, b in zip(ticks_on, ticks_off):
            assert a.flagged == b.flagged
            assert {
                j: v.anomaly_type for j, v in a.verdicts.items()
            } == {j: v.anomaly_type for j, v in b.verdicts.items()}
