"""Metric primitives: counters, gauges, histograms, families, registry.

The load-bearing contracts: histogram bucket *boundaries* (a value equal
to an upper bound must land in that bucket, Prometheus ``le`` semantics),
the label-cardinality guard (a runaway label set must fail loudly, not
eat the process), and registry idempotence (two modules asking for the
same family share it; asking with a different shape is an error).
"""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
)


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = Counter()
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0


class TestHistogramBuckets:
    def test_value_on_boundary_lands_in_that_bucket(self):
        h = Histogram(buckets=(0.1, 0.5, 1.0))
        h.observe(0.1)
        h.observe(0.5)
        h.observe(1.0)
        snap = h.snapshot()
        # le="0.1" is cumulative >= 1: the 0.1 observation is <= 0.1.
        assert snap["buckets"]["0.1"] == 1
        assert snap["buckets"]["0.5"] == 1
        assert snap["buckets"]["1.0"] == 1
        assert snap["inf"] == 0

    def test_epsilon_above_boundary_spills_to_next_bucket(self):
        h = Histogram(buckets=(0.1, 0.5, 1.0))
        h.observe(0.1 + 1e-9)
        snap = h.snapshot()
        assert snap["buckets"]["0.1"] == 0
        assert snap["buckets"]["0.5"] == 1

    def test_overflow_goes_to_inf(self):
        h = Histogram(buckets=(0.1, 0.5))
        h.observe(7.0)
        snap = h.snapshot()
        assert snap["inf"] == 1
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(7.0)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(0.5, 0.1))

    def test_quantiles_interpolate(self):
        h = Histogram(buckets=(0.1, 0.2, 0.4, 0.8, 1.6))
        for v in (0.05, 0.15, 0.3, 0.3, 0.3, 0.6, 0.6, 1.0, 1.2, 1.5):
            h.observe(v)
        # p50 falls inside the (0.2, 0.4] bucket.
        assert 0.2 < h.quantile(0.5) <= 0.4
        assert h.quantile(0.99) <= 1.6
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_quantile_of_empty_histogram_is_nan(self):
        h = Histogram(buckets=DEFAULT_BUCKETS)
        assert math.isnan(h.quantile(0.5))


class TestLabelCardinality:
    def test_label_sets_capped(self):
        reg = Registry()
        family = reg.counter(
            "runaway_total", "runaway", labelnames=("id",), max_label_sets=4
        )
        for i in range(4):
            family.labels(id=str(i)).inc()
        with pytest.raises(ConfigurationError, match="label sets"):
            family.labels(id="too-many")

    def test_existing_label_set_unaffected_by_cap(self):
        reg = Registry()
        family = reg.counter(
            "capped_total", "capped", labelnames=("id",), max_label_sets=2
        )
        family.labels(id="a").inc()
        family.labels(id="b").inc()
        # Re-touching known children is always allowed at the cap.
        family.labels(id="a").inc()
        assert family.labels(id="a").value == 2.0

    def test_unknown_labelname_rejected(self):
        reg = Registry()
        family = reg.counter("one_total", "one", labelnames=("stage",))
        with pytest.raises(ConfigurationError):
            family.labels(shard="0")

    def test_missing_labelname_rejected(self):
        reg = Registry()
        family = reg.counter(
            "two_total", "two", labelnames=("stage", "shard")
        )
        with pytest.raises(ConfigurationError):
            family.labels(stage="detect")


class TestRegistry:
    def test_getters_idempotent(self):
        reg = Registry()
        a = reg.counter("hits_total", "hits")
        b = reg.counter("hits_total", "hits")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = Registry()
        reg.counter("thing", "thing")
        with pytest.raises(ConfigurationError):
            reg.gauge("thing", "thing")

    def test_labelnames_mismatch_rejected(self):
        reg = Registry()
        reg.counter("labeled_total", "labeled", labelnames=("a",))
        with pytest.raises(ConfigurationError):
            reg.counter("labeled_total", "labeled", labelnames=("b",))

    def test_unlabelled_family_proxies_to_sole_child(self):
        reg = Registry()
        counter = reg.counter("plain_total", "plain")
        counter.inc(3)
        gauge = reg.gauge("depth", "depth")
        gauge.set(7)
        hist = reg.histogram("lat", "lat", buckets=(1.0, 2.0))
        hist.observe(1.5)
        snap = reg.snapshot()
        assert snap["plain_total"]["samples"][0]["value"] == 3.0
        assert snap["depth"]["samples"][0]["value"] == 7.0
        assert snap["lat"]["samples"][0]["count"] == 1

    def test_snapshot_is_plain_data(self):
        reg = Registry()
        reg.counter("x_total", "x", labelnames=("k",)).labels(k="v").inc()
        snap = reg.snapshot()
        sample = snap["x_total"]["samples"][0]
        assert sample["labels"] == {"k": "v"}
        assert isinstance(sample["value"], float)

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()
