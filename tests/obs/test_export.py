"""Export plane: Prometheus text exposition, JSON renderer, HTTP server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    MetricsServer,
    fetch_metrics,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import Registry


@pytest.fixture
def registry():
    reg = Registry()
    reg.counter("hits_total", "Requests served").inc(3)
    reg.gauge("depth", "Queue depth").set(7)
    hist = reg.histogram(
        "lat_seconds", "Latency", labelnames=("stage",), buckets=(0.1, 1.0)
    )
    hist.labels(stage="detect").observe(0.05)
    hist.labels(stage="detect").observe(0.5)
    hist.labels(stage="detect").observe(5.0)
    return reg


class TestPrometheusFormat:
    def test_help_and_type_headers(self, registry):
        text = render_prometheus(registry)
        assert "# HELP hits_total Requests served" in text
        assert "# TYPE hits_total counter" in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_counter_and_gauge_samples(self, registry):
        lines = render_prometheus(registry).splitlines()
        assert "hits_total 3" in lines
        assert "depth 7" in lines

    def test_histogram_buckets_are_cumulative(self, registry):
        lines = render_prometheus(registry).splitlines()
        assert 'lat_seconds_bucket{stage="detect",le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{stage="detect",le="1.0"} 2' in lines
        assert 'lat_seconds_bucket{stage="detect",le="+Inf"} 3' in lines
        assert 'lat_seconds_count{stage="detect"} 3' in lines
        assert any(
            line.startswith('lat_seconds_sum{stage="detect"}')
            for line in lines
        )

    def test_label_values_escaped(self):
        reg = Registry()
        reg.counter("odd_total", labelnames=("k",)).labels(
            k='sa"w\\tooth\n'
        ).inc()
        text = render_prometheus(reg)
        assert 'odd_total{k="sa\\"w\\\\tooth\\n"} 1' in text

    def test_ends_with_newline(self, registry):
        assert render_prometheus(registry).endswith("\n")


class TestJsonFormat:
    def test_round_trips_and_attaches_quantiles(self, registry):
        payload = json.loads(render_json(registry))
        assert payload["hits_total"]["samples"][0]["value"] == 3.0
        sample = payload["lat_seconds"]["samples"][0]
        assert sample["count"] == 3
        quantiles = sample["quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert 0.0 < quantiles["p50"] <= 1.0

    def test_empty_histogram_omits_nan_quantiles(self):
        reg = Registry()
        reg.histogram("empty_seconds", buckets=(1.0,))
        payload = json.loads(render_json(reg))
        assert payload["empty_seconds"]["samples"][0]["quantiles"] == {}


class TestMetricsServer:
    def test_serves_metrics_json_and_healthz(self, registry):
        with MetricsServer(registry) as server:
            base = server.url
            text = fetch_metrics(base)
            assert "hits_total 3" in text
            payload = json.loads(fetch_metrics(base, format="json"))
            assert payload["depth"]["samples"][0]["value"] == 7.0
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as r:
                assert json.loads(r.read()) == {"status": "ok"}

    def test_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            assert excinfo.value.code == 404

    def test_ephemeral_port_bound_and_close_idempotent(self, registry):
        server = MetricsServer(registry)
        port = server.start()
        assert port > 0
        assert server.start() == port  # second start is a no-op
        server.close()
        server.close()

    def test_live_updates_visible_across_scrapes(self, registry):
        with MetricsServer(registry) as server:
            before = fetch_metrics(server.url)
            registry.counter("hits_total").inc(2)
            after = fetch_metrics(server.url)
        assert "hits_total 3" in before
        assert "hits_total 5" in after
