"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.steps is None
        assert args.seeds is None

    def test_seed_parsing(self):
        args = build_parser().parse_args(["run", "figure7", "--seeds", "0,3,5"])
        assert args.seeds == (0, 3, 5)

    def test_bad_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure7", "--seeds", "a,b"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "figure6b"]) == 0
        out = capsys.readouterr().out
        assert "P{F_r(j) <= tau}" in out
        assert "containment" in out

    def test_run_simulated_experiment_scaled(self, capsys):
        assert main(["run", "table2", "--steps", "1", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "I_k (Theorem 5)" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "fig6a.json"
        assert main(["run", "figure6a", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["experiment_id"] == "figure6a"
        assert payload["rows"]


class TestBackendFlags:
    def test_backend_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "table2", "--backend", "process", "--workers", "2"]
        )
        assert args.backend == "process"
        assert args.workers == 2

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.backend is None
        assert args.workers is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--backend", "threads"])

    def test_run_with_serial_backend(self, capsys):
        assert (
            main(
                ["run", "table2", "--steps", "1", "--seeds", "0",
                 "--backend", "serial"]
            )
            == 0
        )
        assert "I_k (Theorem 5)" in capsys.readouterr().out

    def test_backend_ignored_by_analytic_experiments(self, capsys):
        # figure6b runs no simulation; the flag must be silently dropped.
        assert main(["run", "figure6b", "--backend", "process"]) == 0


class TestOnlineCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.devices == 10_000
        assert args.store_shards == 8
        assert args.topology_shards == 0
        assert args.batch is None
        assert not args.full

    def test_store_shards_flag_and_deprecated_alias(self, capsys):
        args = build_parser().parse_args(["serve", "--store-shards", "4"])
        assert args.store_shards == 4
        args = build_parser().parse_args(["serve", "--shards", "5"])
        assert args.store_shards == 5
        assert "deprecated" in capsys.readouterr().err

    def test_replay_parser_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.command == "replay"
        assert args.trace is None

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "threads"])

    def test_serve_runs_and_reports(self, capsys):
        assert (
            main(
                ["serve", "--devices", "120", "--ticks", "3", "--churn",
                 "0.05", "--burst-every", "2", "--burst-size", "5",
                 "--shards", "4", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serve: n=120" in out
        assert "recomputed" in out
        assert "throughput" in out

    def test_serve_full_mode_flag(self, capsys):
        assert (
            main(["serve", "--devices", "60", "--ticks", "2", "--full"]) == 0
        )
        assert "mode=full-recompute" in capsys.readouterr().out

    def test_serve_json_output(self, tmp_path, capsys):
        target = tmp_path / "serve.json"
        assert (
            main(
                ["serve", "--devices", "60", "--ticks", "2", "--json",
                 str(target)]
            )
            == 0
        )
        payload = json.loads(target.read_text())
        assert payload["stats"]["ticks"] == 2
        assert len(payload["ticks"]) == 2
        assert "metrics" in payload

    def test_replay_synthetic_runs(self, capsys):
        assert (
            main(
                ["replay", "--devices", "40", "--steps", "8", "--shards", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replay: synthetic" in out
        assert "totals:" in out

    def test_replay_trace_file(self, tmp_path, capsys):
        from repro.io.synthetic import TraceConfig, generate_trace
        from repro.io.traces import write_trace

        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text(
            write_trace(generate_trace(TraceConfig(devices=20, steps=6)))
        )
        target = tmp_path / "replay.json"
        assert (
            main(["replay", "--trace", str(trace_path), "--json", str(target)])
            == 0
        )
        assert str(trace_path) in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["source"] == str(trace_path)
        assert len(payload["ticks"]) == 5


class TestObservabilityFlags:
    def test_json_report_carries_stage_seconds(self, tmp_path, capsys):
        target = tmp_path / "replay.json"
        assert (
            main(
                ["replay", "--devices", "40", "--steps", "6", "--json",
                 str(target)]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert "dirty-region" in payload["stage_seconds"]
        for tick in payload["ticks"]:
            assert "stage_seconds" in tick
            assert all(v >= 0.0 for v in tick["stage_seconds"].values())

    def test_serve_metrics_port_serves_prometheus(self, capsys, monkeypatch):
        import re

        from repro.obs import fetch_metrics
        import repro.cli as cli

        # The ephemeral endpoint only lives for the duration of main();
        # scrape it mid-run by hooking the server factory.
        scraped = {}
        original = cli._start_metrics_server

        def capture(args):
            server = original(args)
            scraped["url"] = server.url
            return server

        monkeypatch.setattr(cli, "_start_metrics_server", capture)
        original_write = cli._write_service_json

        def scrape_then_write(path, result, service, extra):
            scraped["text"] = fetch_metrics(scraped["url"])
            return original_write(path, result, service, extra)

        monkeypatch.setattr(cli, "_write_service_json", scrape_then_write)
        assert (
            main(
                ["serve", "--devices", "80", "--ticks", "3",
                 "--churn", "0.1", "--metrics-port", "0",
                 "--json", "/dev/null"]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "metrics endpoint: http://127.0.0.1:" in err
        text = scraped["text"]
        assert re.search(
            r'repro_stage_seconds_bucket\{stage="dirty-region",le="[^"]+"\} \d+',
            text,
        )
        assert "repro_service_ticks_total" in text
        assert "repro_service_queue_depth" in text
        assert "repro_service_devices 80" in text

    def test_serve_log_json_emits_events(self, capsys):
        assert (
            main(
                ["serve", "--devices", "60", "--ticks", "2", "--log-json"]
            )
            == 0
        )
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.err.splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds.count("tick") == 2
        assert kinds[-1] == "summary"
        tick_events = [e for e in events if e["event"] == "tick"]
        assert all("stage_seconds" in e for e in tick_events)
        # The per-tick table is replaced, not duplicated.
        assert "tick  applied" not in captured.out

    def test_replay_log_json_emits_events(self, capsys):
        assert (
            main(["replay", "--devices", "30", "--steps", "5", "--log-json"])
            == 0
        )
        err_lines = capsys.readouterr().err.splitlines()
        events = [json.loads(line) for line in err_lines]
        assert [e["event"] for e in events].count("tick") == 4

    def test_metrics_command_renders_local_registry(self, capsys):
        from repro.obs import get_registry

        get_registry().counter("cli_probe_total", "probe").inc(2)
        assert main(["metrics"]) == 0
        assert "cli_probe_total 2" in capsys.readouterr().out

    def test_metrics_command_fetches_from_endpoint(self, capsys):
        from repro.obs import MetricsServer
        from repro.obs.metrics import Registry

        registry = Registry()
        registry.gauge("remote_depth", "depth").set(4)
        with MetricsServer(registry) as server:
            assert main(["metrics", "--url", server.url]) == 0
            out = capsys.readouterr().out
            assert "remote_depth 4" in out
            assert (
                main(["metrics", "--url", server.url, "--format", "json"])
                == 0
            )
            payload = json.loads(capsys.readouterr().out)
            assert payload["remote_depth"]["samples"][0]["value"] == 4.0

    def test_metrics_command_unreachable_endpoint_fails(self, capsys):
        assert main(["metrics", "--url", "http://127.0.0.1:9"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestDetectorFlags:
    """The --detector family knob on serve/replay."""

    def test_defaults(self):
        for command in ("serve", "replay"):
            args = build_parser().parse_args([command])
            assert args.detector == "step"
            assert args.detection == "bank"

    def test_unknown_detector_rejected_cleanly(self):
        for command in ("serve", "replay"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--detector", "arima"])
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--detection", "gpu"])

    def _replay_ticks(self, tmp_path, capsys, family, plane, extra=()):
        target = tmp_path / f"replay-{family}-{plane}.json"
        assert (
            main(
                [
                    "replay", "--devices", "40", "--steps", "10",
                    "--detector", family, "--detection", plane,
                    *extra, "--json", str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert payload["detector"] == family
        assert payload["detection"] == plane
        # Wall-clock stage timings differ run to run; the cross-plane
        # contract covers the deterministic fields.
        for tick in payload["ticks"]:
            tick.pop("stage_seconds", None)
        return payload["ticks"]

    @pytest.mark.parametrize(
        "family,extra",
        [
            ("step", ()),
            ("band", ("--band-low", "0.5")),
            ("ewma", ("--alpha", "0.3", "--nsigma", "5", "--det-warmup", "3")),
            ("shewhart", ("--window", "6", "--nsigma", "5")),
            ("cusum", ("--cusum-threshold", "0.2", "--cusum-drift", "0.01")),
            ("holt-winters", ("--hw-band", "6",)),
            ("kalman", ("--nsigma", "7",)),
        ],
    )
    def test_each_choice_matches_scalar_reference(
        self, tmp_path, capsys, family, extra
    ):
        bank = self._replay_ticks(tmp_path, capsys, family, "bank", extra)
        scalar = self._replay_ticks(tmp_path, capsys, family, "scalar", extra)
        assert bank == scalar  # identical per-tick flagged/recompute rows

    def test_serve_raw_runs_in_service_bank(self, tmp_path, capsys):
        target = tmp_path / "serve-raw.json"
        assert (
            main(
                [
                    "serve", "--devices", "150", "--ticks", "4", "--churn",
                    "0.1", "--flag-rate", "0.5", "--raw",
                    "--detector", "step", "--json", str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "flags=in-service step/bank bank" in out
        payload = json.loads(target.read_text())
        assert payload["detector"] == "step"
        assert payload["detection"] == "bank"

    def test_serve_raw_planes_agree(self, tmp_path, capsys):
        rows = {}
        for plane in ("bank", "scalar"):
            target = tmp_path / f"serve-{plane}.json"
            assert (
                main(
                    [
                        "serve", "--devices", "120", "--ticks", "4",
                        "--churn", "0.1", "--flag-rate", "0.5", "--raw",
                        "--detector", "ewma", "--detection", plane,
                        "--json", str(target),
                    ]
                )
                == 0
            )
            capsys.readouterr()
            ticks = json.loads(target.read_text())["ticks"]
            for tick in ticks:
                tick.pop("stage_seconds", None)  # wall-clock, run-varying
            rows[plane] = ticks
        assert rows["bank"] == rows["scalar"]
