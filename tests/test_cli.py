"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.steps is None
        assert args.seeds is None

    def test_seed_parsing(self):
        args = build_parser().parse_args(["run", "figure7", "--seeds", "0,3,5"])
        assert args.seeds == (0, 3, 5)

    def test_bad_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure7", "--seeds", "a,b"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "figure6b"]) == 0
        out = capsys.readouterr().out
        assert "P{F_r(j) <= tau}" in out
        assert "containment" in out

    def test_run_simulated_experiment_scaled(self, capsys):
        assert main(["run", "table2", "--steps", "1", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "I_k (Theorem 5)" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "fig6a.json"
        assert main(["run", "figure6a", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["experiment_id"] == "figure6a"
        assert payload["rows"]


class TestBackendFlags:
    def test_backend_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "table2", "--backend", "process", "--workers", "2"]
        )
        assert args.backend == "process"
        assert args.workers == 2

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.backend is None
        assert args.workers is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--backend", "threads"])

    def test_run_with_serial_backend(self, capsys):
        assert (
            main(
                ["run", "table2", "--steps", "1", "--seeds", "0",
                 "--backend", "serial"]
            )
            == 0
        )
        assert "I_k (Theorem 5)" in capsys.readouterr().out

    def test_backend_ignored_by_analytic_experiments(self, capsys):
        # figure6b runs no simulation; the flag must be silently dropped.
        assert main(["run", "figure6b", "--backend", "process"]) == 0


class TestOnlineCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.devices == 10_000
        assert args.shards == 8
        assert args.batch is None
        assert not args.full

    def test_replay_parser_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.command == "replay"
        assert args.trace is None

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "threads"])

    def test_serve_runs_and_reports(self, capsys):
        assert (
            main(
                ["serve", "--devices", "120", "--ticks", "3", "--churn",
                 "0.05", "--burst-every", "2", "--burst-size", "5",
                 "--shards", "4", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serve: n=120" in out
        assert "recomputed" in out
        assert "throughput" in out

    def test_serve_full_mode_flag(self, capsys):
        assert (
            main(["serve", "--devices", "60", "--ticks", "2", "--full"]) == 0
        )
        assert "mode=full-recompute" in capsys.readouterr().out

    def test_serve_json_output(self, tmp_path, capsys):
        target = tmp_path / "serve.json"
        assert (
            main(
                ["serve", "--devices", "60", "--ticks", "2", "--json",
                 str(target)]
            )
            == 0
        )
        payload = json.loads(target.read_text())
        assert payload["stats"]["ticks"] == 2
        assert len(payload["ticks"]) == 2
        assert "metrics" in payload

    def test_replay_synthetic_runs(self, capsys):
        assert (
            main(
                ["replay", "--devices", "40", "--steps", "8", "--shards", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replay: synthetic" in out
        assert "totals:" in out

    def test_replay_trace_file(self, tmp_path, capsys):
        from repro.io.synthetic import TraceConfig, generate_trace
        from repro.io.traces import write_trace

        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text(
            write_trace(generate_trace(TraceConfig(devices=20, steps=6)))
        )
        target = tmp_path / "replay.json"
        assert (
            main(["replay", "--trace", str(trace_path), "--json", str(target)])
            == 0
        )
        assert str(trace_path) in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["source"] == str(trace_path)
        assert len(payload["ticks"]) == 5


class TestDetectorFlags:
    """The --detector family knob on serve/replay."""

    def test_defaults(self):
        for command in ("serve", "replay"):
            args = build_parser().parse_args([command])
            assert args.detector == "step"
            assert args.detection == "bank"

    def test_unknown_detector_rejected_cleanly(self):
        for command in ("serve", "replay"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--detector", "arima"])
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--detection", "gpu"])

    def _replay_ticks(self, tmp_path, capsys, family, plane, extra=()):
        target = tmp_path / f"replay-{family}-{plane}.json"
        assert (
            main(
                [
                    "replay", "--devices", "40", "--steps", "10",
                    "--detector", family, "--detection", plane,
                    *extra, "--json", str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert payload["detector"] == family
        assert payload["detection"] == plane
        return payload["ticks"]

    @pytest.mark.parametrize(
        "family,extra",
        [
            ("step", ()),
            ("band", ("--band-low", "0.5")),
            ("ewma", ("--alpha", "0.3", "--nsigma", "5", "--det-warmup", "3")),
            ("shewhart", ("--window", "6", "--nsigma", "5")),
            ("cusum", ("--cusum-threshold", "0.2", "--cusum-drift", "0.01")),
            ("holt-winters", ("--hw-band", "6",)),
            ("kalman", ("--nsigma", "7",)),
        ],
    )
    def test_each_choice_matches_scalar_reference(
        self, tmp_path, capsys, family, extra
    ):
        bank = self._replay_ticks(tmp_path, capsys, family, "bank", extra)
        scalar = self._replay_ticks(tmp_path, capsys, family, "scalar", extra)
        assert bank == scalar  # identical per-tick flagged/recompute rows

    def test_serve_raw_runs_in_service_bank(self, tmp_path, capsys):
        target = tmp_path / "serve-raw.json"
        assert (
            main(
                [
                    "serve", "--devices", "150", "--ticks", "4", "--churn",
                    "0.1", "--flag-rate", "0.5", "--raw",
                    "--detector", "step", "--json", str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "flags=in-service step/bank bank" in out
        payload = json.loads(target.read_text())
        assert payload["detector"] == "step"
        assert payload["detection"] == "bank"

    def test_serve_raw_planes_agree(self, tmp_path, capsys):
        rows = {}
        for plane in ("bank", "scalar"):
            target = tmp_path / f"serve-{plane}.json"
            assert (
                main(
                    [
                        "serve", "--devices", "120", "--ticks", "4",
                        "--churn", "0.1", "--flag-rate", "0.5", "--raw",
                        "--detector", "ewma", "--detection", plane,
                        "--json", str(target),
                    ]
                )
                == 0
            )
            capsys.readouterr()
            rows[plane] = json.loads(target.read_text())["ticks"]
        assert rows["bank"] == rows["scalar"]
