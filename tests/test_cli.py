"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.steps is None
        assert args.seeds is None

    def test_seed_parsing(self):
        args = build_parser().parse_args(["run", "figure7", "--seeds", "0,3,5"])
        assert args.seeds == (0, 3, 5)

    def test_bad_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure7", "--seeds", "a,b"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "figure6b"]) == 0
        out = capsys.readouterr().out
        assert "P{F_r(j) <= tau}" in out
        assert "containment" in out

    def test_run_simulated_experiment_scaled(self, capsys):
        assert main(["run", "table2", "--steps", "1", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "I_k (Theorem 5)" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "fig6a.json"
        assert main(["run", "figure6a", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["experiment_id"] == "figure6a"
        assert payload["rows"]


class TestBackendFlags:
    def test_backend_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "table2", "--backend", "process", "--workers", "2"]
        )
        assert args.backend == "process"
        assert args.workers == 2

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.backend is None
        assert args.workers is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--backend", "threads"])

    def test_run_with_serial_backend(self, capsys):
        assert (
            main(
                ["run", "table2", "--steps", "1", "--seeds", "0",
                 "--backend", "serial"]
            )
            == 0
        )
        assert "I_k (Theorem 5)" in capsys.readouterr().out

    def test_backend_ignored_by_analytic_experiments(self, capsys):
        # figure6b runs no simulation; the flag must be silently dropped.
        assert main(["run", "figure6b", "--backend", "process"]) == 0
