"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.steps is None
        assert args.seeds is None

    def test_seed_parsing(self):
        args = build_parser().parse_args(["run", "figure7", "--seeds", "0,3,5"])
        assert args.seeds == (0, 3, 5)

    def test_bad_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure7", "--seeds", "a,b"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "figure6b"]) == 0
        out = capsys.readouterr().out
        assert "P{F_r(j) <= tau}" in out
        assert "containment" in out

    def test_run_simulated_experiment_scaled(self, capsys):
        assert main(["run", "table2", "--steps", "1", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "I_k (Theorem 5)" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "fig6a.json"
        assert main(["run", "figure6a", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["experiment_id"] == "figure6a"
        assert payload["rows"]


class TestBackendFlags:
    def test_backend_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "table2", "--backend", "process", "--workers", "2"]
        )
        assert args.backend == "process"
        assert args.workers == 2

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.backend is None
        assert args.workers is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--backend", "threads"])

    def test_run_with_serial_backend(self, capsys):
        assert (
            main(
                ["run", "table2", "--steps", "1", "--seeds", "0",
                 "--backend", "serial"]
            )
            == 0
        )
        assert "I_k (Theorem 5)" in capsys.readouterr().out

    def test_backend_ignored_by_analytic_experiments(self, capsys):
        # figure6b runs no simulation; the flag must be silently dropped.
        assert main(["run", "figure6b", "--backend", "process"]) == 0


class TestOnlineCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.devices == 10_000
        assert args.shards == 8
        assert args.batch is None
        assert not args.full

    def test_replay_parser_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.command == "replay"
        assert args.trace is None

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "threads"])

    def test_serve_runs_and_reports(self, capsys):
        assert (
            main(
                ["serve", "--devices", "120", "--ticks", "3", "--churn",
                 "0.05", "--burst-every", "2", "--burst-size", "5",
                 "--shards", "4", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serve: n=120" in out
        assert "recomputed" in out
        assert "throughput" in out

    def test_serve_full_mode_flag(self, capsys):
        assert (
            main(["serve", "--devices", "60", "--ticks", "2", "--full"]) == 0
        )
        assert "mode=full-recompute" in capsys.readouterr().out

    def test_serve_json_output(self, tmp_path, capsys):
        target = tmp_path / "serve.json"
        assert (
            main(
                ["serve", "--devices", "60", "--ticks", "2", "--json",
                 str(target)]
            )
            == 0
        )
        payload = json.loads(target.read_text())
        assert payload["stats"]["ticks"] == 2
        assert len(payload["ticks"]) == 2
        assert "metrics" in payload

    def test_replay_synthetic_runs(self, capsys):
        assert (
            main(
                ["replay", "--devices", "40", "--steps", "8", "--shards", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replay: synthetic" in out
        assert "totals:" in out

    def test_replay_trace_file(self, tmp_path, capsys):
        from repro.io.synthetic import TraceConfig, generate_trace
        from repro.io.traces import write_trace

        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text(
            write_trace(generate_trace(TraceConfig(devices=20, steps=6)))
        )
        target = tmp_path / "replay.json"
        assert (
            main(["replay", "--trace", str(trace_path), "--json", str(target)])
            == 0
        )
        assert str(trace_path) in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["source"] == str(trace_path)
        assert len(payload["ticks"]) == 5
