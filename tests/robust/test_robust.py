"""Tests for the malicious-device attacks and the f-tolerant defense."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError, UnknownDeviceError
from repro.core.transition import Transition
from repro.core.types import AnomalyType
from repro.robust import (
    AmbiguityAttack,
    MimicryAttack,
    RobustCharacterizer,
    RobustLabel,
    apply_forgeries,
)


def isolated_victim_transition(n_background: int = 30) -> Transition:
    """One isolated victim (device 0) plus quiet background devices."""
    rng = np.random.default_rng(3)
    prev = np.clip(rng.normal(0.85, 0.03, (n_background + 1, 2)), 0, 1)
    cur = prev.copy()
    cur[0] = [0.2, 0.3]  # the victim's own fault
    return Transition.from_arrays(prev, cur, [0], r=0.03, tau=3)


def massive_group_transition(size: int = 8) -> Transition:
    """A genuine massive group (devices 0..size-1) co-moving."""
    rng = np.random.default_rng(4)
    prev = np.clip(rng.normal(0.8, 0.004, (size + 10, 2)), 0, 1)
    cur = prev.copy()
    cur[:size] = np.clip(cur[:size] - [0.4, 0.25], 0, 1)
    return Transition.from_arrays(prev, cur, range(size), r=0.03, tau=3)


class TestApplyForgeries:
    def test_ids_appended_and_flagged(self):
        t = isolated_victim_transition()
        outcome = apply_forgeries(
            t, np.full((2, 2), 0.5), np.full((2, 2), 0.6), victim=0
        )
        assert outcome.forged_devices == frozenset({t.n, t.n + 1})
        assert outcome.forged_devices <= outcome.transition.flagged
        assert outcome.honest_flagged == t.flagged

    def test_shape_validation(self):
        t = isolated_victim_transition()
        with pytest.raises(ConfigurationError):
            apply_forgeries(t, np.zeros((2, 3)), np.zeros((2, 3)), victim=0)
        with pytest.raises(ConfigurationError):
            apply_forgeries(t, np.zeros((2, 2)), np.zeros((3, 2)), victim=0)


class TestMimicryAttack:
    def test_suppresses_isolated_victim_against_naive_characterizer(self):
        t = isolated_victim_transition()
        assert Characterizer(t).characterize(0).anomaly_type is AnomalyType.ISOLATED
        outcome = MimicryAttack(forged_count=3).mount(t, victim=0)
        naive = Characterizer(outcome.transition).characterize(0)
        assert naive.anomaly_type is AnomalyType.MASSIVE, (
            "with tau=3 forged shadows the naive characterizer is fooled"
        )

    def test_too_few_forgeries_fail(self):
        t = isolated_victim_transition()
        outcome = MimicryAttack(forged_count=2).mount(t, victim=0)
        naive = Characterizer(outcome.transition).characterize(0)
        assert naive.anomaly_type is AnomalyType.ISOLATED

    def test_victim_must_be_flagged(self):
        t = isolated_victim_transition()
        with pytest.raises(UnknownDeviceError):
            MimicryAttack(forged_count=3).mount(t, victim=5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MimicryAttack(forged_count=0)
        with pytest.raises(ConfigurationError):
            MimicryAttack(forged_count=1, jitter=2.0)

    def test_boundary_victim_shadows_not_collapsed_onto_face(self):
        """Regression: forgeries were placed then clipped into the cube.

        For a victim within ``jitter * r`` of a cube face, clipping
        collapsed roughly half the shadow coordinates onto the boundary
        value exactly.  Sampling inside the jitter-box ∩ cube keeps the
        shadows spread (and in range) instead.
        """
        rng = np.random.default_rng(8)
        n = 20
        prev = np.clip(rng.normal(0.85, 0.03, (n + 1, 2)), 0, 1)
        cur = prev.copy()
        prev[0] = [0.9, 0.9]
        cur[0] = [0.0, 1.0]  # victim lands ON two cube faces
        t = Transition.from_arrays(prev, cur, [0], r=0.03, tau=3)
        outcome = MimicryAttack(forged_count=6, jitter=0.5, seed=2).mount(
            t, victim=0
        )
        forged = sorted(outcome.forged_devices)
        shadows = outcome.transition.current.positions[forged]
        scale = 0.5 * t.r
        # In range, inside the jitter box of the victim...
        assert np.all(shadows >= 0.0) and np.all(shadows <= 1.0)
        assert np.all(np.abs(shadows - cur[0]) <= scale + 1e-12)
        # ...and NOT piled up on the faces: every shadow coordinate is
        # distinct (clipping made them exactly 0.0 / 1.0 en masse).
        for axis in range(2):
            assert len(set(shadows[:, axis])) == len(forged)
        # The attack itself still works from the boundary.
        naive = Characterizer(outcome.transition).characterize(0)
        assert naive.anomaly_type is AnomalyType.MASSIVE

    def test_boundary_victim_attack_strength_matches_interior(self):
        # The sampled shadows stay tau-dense-consistent with the victim
        # whether it sits mid-cube or on a face.
        for victim_cur in ([0.5, 0.5], [1.0, 0.0]):
            rng = np.random.default_rng(9)
            prev = np.clip(rng.normal(0.8, 0.02, (15, 2)), 0, 1)
            cur = prev.copy()
            cur[0] = victim_cur
            t = Transition.from_arrays(prev, cur, [0], r=0.03, tau=3)
            outcome = MimicryAttack(forged_count=3, seed=4).mount(t, victim=0)
            motion = {0} | set(outcome.forged_devices)
            assert outcome.transition.is_dense_motion(motion)


class TestAmbiguityAttack:
    def test_degrades_massive_to_unresolved(self):
        t = massive_group_transition(size=5)
        honest = Characterizer(t).characterize_all()
        assert all(v.anomaly_type is AnomalyType.MASSIVE for v in honest.values())
        outcome = AmbiguityAttack(forged_count=4, seed=1).mount(t, victim=0)
        attacked = Characterizer(outcome.transition).characterize_all()
        honest_verdicts = [attacked[d].anomaly_type for d in range(5)]
        assert AnomalyType.UNRESOLVED in honest_verdicts, (
            "the competing forged motion must create ambiguity"
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmbiguityAttack(forged_count=0)
        with pytest.raises(ConfigurationError):
            AmbiguityAttack(forged_count=1, offset_factor=0.0)


class TestRobustCharacterizer:
    def test_defeats_mimicry(self):
        """The headline property: with f >= forged count, the victim's
        verdict never silently flips to massive — it becomes SUSPECT."""
        t = isolated_victim_transition()
        outcome = MimicryAttack(forged_count=3).mount(t, victim=0)
        robust = RobustCharacterizer(outcome.transition, f=3)
        verdict = robust.characterize(0)
        assert verdict.label in (RobustLabel.SUSPECT, RobustLabel.UNRESOLVED)
        assert verdict.label is not RobustLabel.MASSIVE

    def test_attack_proof_massive_on_big_groups(self):
        """A genuinely big group stays MASSIVE under the hardened test."""
        t = massive_group_transition(size=8)  # > tau + f honest members
        robust = RobustCharacterizer(t, f=3)
        for device in range(8):
            assert robust.characterize(device).label is RobustLabel.MASSIVE

    def test_small_massive_groups_degrade_to_suspect(self):
        """Groups in (tau, tau + f] cannot be certified — inherent loss."""
        t = massive_group_transition(size=5)
        robust = RobustCharacterizer(t, f=3)
        labels = {robust.characterize(d).label for d in range(5)}
        assert labels == {RobustLabel.SUSPECT}

    def test_isolated_devices_stay_isolated(self):
        t = isolated_victim_transition()
        robust = RobustCharacterizer(t, f=3)
        assert robust.characterize(0).label is RobustLabel.ISOLATED

    def test_f_zero_equals_plain_characterizer(self):
        t = massive_group_transition(size=5)
        robust = RobustCharacterizer(t, f=0)
        plain = Characterizer(t).characterize_all()
        for device in t.flagged_sorted:
            verdict = robust.characterize(device)
            assert verdict.label.value == plain[device].anomaly_type.value

    def test_validation(self):
        t = massive_group_transition(size=5)
        with pytest.raises(ConfigurationError):
            RobustCharacterizer(t, f=-1)
        with pytest.raises(ConfigurationError):
            RobustCharacterizer(t, f=10**6)

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_soundness_under_any_mimicry(self, seed):
        """Property: whatever the attacker's jitter/seed, a MASSIVE robust
        verdict implies more than tau honest co-moving devices."""
        rng = np.random.default_rng(seed)
        forged = int(rng.integers(1, 4))
        t = isolated_victim_transition()
        attack = MimicryAttack(forged_count=forged, jitter=float(rng.uniform(0, 1)), seed=seed)
        outcome = attack.mount(t, victim=0)
        robust = RobustCharacterizer(outcome.transition, f=3)
        verdict = robust.characterize(0)
        # Victim has zero honest co-movers; with f = 3 tolerated it can
        # never be certified massive by <= 3 forgeries.
        assert verdict.label is not RobustLabel.MASSIVE

    def test_characterize_all_covers_flagged(self):
        t = massive_group_transition(size=6)
        robust = RobustCharacterizer(t, f=2)
        results = robust.characterize_all()
        assert set(results) == set(t.flagged_sorted)
