"""Shared fixtures and builders for the test-suite.

Most core tests phrase configurations the way the paper's figures do: a
single service (``d = 1``), each device given as a ``(QoS at k-1, QoS at
k)`` pair.  The helpers here build :class:`repro.Transition` objects from
that shape and provide canonical paper scenarios.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

import pytest

from repro.core.transition import Transition


def make_transition_1d(
    pairs: Sequence[Tuple[float, float]],
    *,
    r: float,
    tau: int,
    flagged: Optional[Iterable[int]] = None,
) -> Transition:
    """Build a one-service transition from (prev, cur) pairs."""
    return Transition.from_trajectories_1d(pairs, flagged, r=r, tau=tau)


def random_clustered_pairs(
    rng: random.Random, n: int, r: float, *, spread: float = 2.2
) -> List[Tuple[float, float]]:
    """Random 1-D configuration biased toward overlapping motions.

    With probability 0.6 a new device lands within ``spread * r`` of an
    existing one (in the combined space), which is what produces chained /
    overlapping maximal motions — the interesting regime for the
    characterization theorems.
    """
    pts: List[Tuple[float, float]] = []
    for _ in range(n):
        if pts and rng.random() < 0.6:
            bx, by = pts[rng.randrange(len(pts))]
            pts.append(
                (
                    min(1.0, max(0.0, bx + rng.uniform(-spread * r, spread * r))),
                    min(1.0, max(0.0, by + rng.uniform(-spread * r, spread * r))),
                )
            )
        else:
            pts.append((rng.random(), rng.random()))
    return pts


# ----------------------------------------------------------------------
# Canonical paper configurations (all zero-based device ids)
# ----------------------------------------------------------------------

FIGURE3_R = 0.05
FIGURE3_TAU = 3
# Five devices on a line in the combined space; maximal motions are
# {0,1,2,3} and {1,2,3,4}: the paper's ACP-impossibility witness.
FIGURE3_PAIRS: List[Tuple[float, float]] = [
    (0.30, 0.30),
    (0.32, 0.32),
    (0.35, 0.35),
    (0.38, 0.38),
    (0.42, 0.42),
]

FIGURE5_R = 0.05
FIGURE5_TAU = 3


def figure5_pairs() -> List[Tuple[float, float]]:
    """Eight devices in four coincident pairs on a diamond of side 1.5r.

    Adjacent cluster pairs are within ``2r`` (uniform norm), opposite pairs
    are ``3r`` apart, so the maximal motions are the four 4-device "edges"
    {0,1}+{2,3}, {2,3}+{4,5}, {4,5}+{6,7}, {6,7}+{0,1} — the configuration
    of the paper's Figure 5 where Theorem 6 is insufficient but every
    device is massive by Theorem 7.
    """
    r = FIGURE5_R
    clusters = [
        (0.300, 0.300),
        (0.300 + 1.5 * r, 0.300 + 1.5 * r),
        (0.300, 0.300 + 3.0 * r),
        (0.300 - 1.5 * r, 0.300 + 1.5 * r),
    ]
    pairs: List[Tuple[float, float]] = []
    for cluster in clusters:
        pairs.append(cluster)
        pairs.append(cluster)
    return pairs


@pytest.fixture
def figure3_transition() -> Transition:
    """The paper's Figure 3 scenario (ACP impossibility witness)."""
    return make_transition_1d(FIGURE3_PAIRS, r=FIGURE3_R, tau=FIGURE3_TAU)


@pytest.fixture
def figure5_transition() -> Transition:
    """The paper's Figure 5 scenario (Theorem 7 strictly stronger than 6)."""
    return make_transition_1d(figure5_pairs(), r=FIGURE5_R, tau=FIGURE5_TAU)


@pytest.fixture
def single_blob_transition() -> Transition:
    """Six coincident flagged devices: one unambiguous massive anomaly."""
    pairs = [(0.5, 0.8)] * 6
    return make_transition_1d(pairs, r=0.03, tau=3)


@pytest.fixture
def scattered_transition() -> Transition:
    """Five well-separated flagged devices: all isolated."""
    pairs = [(0.05, 0.9), (0.25, 0.1), (0.45, 0.5), (0.7, 0.3), (0.95, 0.7)]
    return make_transition_1d(pairs, r=0.03, tau=2)
