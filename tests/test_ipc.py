"""Shared IPC primitives: the shm layer both the engine pool and the
process-sharded topology stand on.

Covers the promoted helpers in isolation — the double-buffered
:class:`SnapshotRing` publish protocol (hot vs cold path), the columnar
:class:`ShmPlanes` create/attach offset agreement, and the cached
:class:`SegmentReader` attach/evict discipline — so a regression here
fails fast instead of surfacing as a flaky cross-process identity test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ipc import (
    SegmentReader,
    ShardDeadError,
    ShardRoundtripError,
    ShardTimeoutError,
    ShmPlanes,
    SnapshotRing,
    StaleHaloError,
    unlink_by_name,
)


class TestErrors:
    def test_roundtrip_hierarchy(self):
        assert issubclass(ShardDeadError, ShardRoundtripError)
        assert issubclass(ShardTimeoutError, ShardRoundtripError)
        assert not issubclass(StaleHaloError, ShardRoundtripError)


class TestSnapshotRing:
    def _read(self, name, count):
        reader = SegmentReader()
        try:
            return reader.array(name, np.float64, count).copy()
        finally:
            reader.close()

    def test_cold_publish_copies_both_endpoints(self):
        ring = SnapshotRing()
        try:
            prev = np.arange(6, dtype=float).reshape(3, 2)
            cur = prev + 1.0
            prev_name, cur_name = ring.publish_pair(prev, cur)
            assert prev_name != cur_name
            assert np.array_equal(self._read(prev_name, 6), prev.ravel())
            assert np.array_equal(self._read(cur_name, 6), cur.ravel())
        finally:
            ring.drop_segments()

    def test_hot_publish_reuses_last_cur_slot(self):
        ring = SnapshotRing()
        try:
            a = np.arange(6, dtype=float).reshape(3, 2)
            b = a + 1.0
            b.flags.writeable = False
            _, cur_name = ring.publish_pair(a, b)
            # Chained publish: prev IS the frozen last cur — the slot it
            # already lives in becomes the prev side, zero extra copies.
            c = b + 1.0
            prev_name, next_name = ring.publish_pair(b, c)
            assert prev_name == cur_name
            assert next_name != cur_name
            assert np.array_equal(self._read(prev_name, 6), b.ravel())
            assert np.array_equal(self._read(next_name, 6), c.ravel())
        finally:
            ring.drop_segments()

    def test_regrow_renames_every_segment(self):
        ring = SnapshotRing()
        try:
            small = np.zeros((2, 2))
            ring.publish_pair(small, small)
            before = set(ring.segment_names())
            big = np.zeros((64, 2))
            ring.publish_pair(big, big)
            after = set(ring.segment_names())
            assert before.isdisjoint(after)
            for name in before:  # old names are unlinked, not leaked
                with pytest.raises(FileNotFoundError):
                    self._read(name, 4)
        finally:
            ring.drop_segments()

    def test_drop_segments_idempotent(self):
        ring = SnapshotRing()
        ring.publish_pair(np.zeros((2, 2)), np.zeros((2, 2)))
        names = ring.segment_names()
        ring.drop_segments()
        ring.drop_segments()
        assert ring.segment_names() == ()
        assert all(not unlink_by_name(n) for n in names)


FIELDS = (
    ("pos", np.dtype(np.float64), (2,)),
    ("flag", np.dtype(np.bool_), ()),
    ("code", np.dtype(np.int8), ()),
)


class TestShmPlanes:
    def test_create_attach_offset_agreement(self):
        planes = ShmPlanes.create(8, FIELDS)
        try:
            planes.header[0] = 5
            planes.arrays["pos"][3] = (0.25, 0.75)
            planes.arrays["flag"][3] = True
            planes.arrays["code"][3] = -2
            other = ShmPlanes.attach(planes.name, 8, FIELDS)
            try:
                assert other.header[0] == 5
                assert tuple(other.arrays["pos"][3]) == (0.25, 0.75)
                assert bool(other.arrays["flag"][3])
                assert int(other.arrays["code"][3]) == -2
                # Writes flow the other way too: one segment, two maps.
                other.arrays["code"][3] = 7
                assert int(planes.arrays["code"][3]) == 7
            finally:
                other.arrays = {}
                other.header = None
                other.close()
        finally:
            planes.arrays = {}
            planes.header = None
            planes.unlink()

    def test_required_bytes_aligns_every_block(self):
        total = ShmPlanes.required_bytes(3, FIELDS)
        # header + pos (48B) + flag (3B -> 8B) + code (3B -> 8B)
        assert total == ShmPlanes.HEADER_SLOTS * 8 + 48 + 8 + 8


class TestSegmentReader:
    def test_evict_except_drops_stale_attachments(self):
        a = ShmPlanes.create(4, FIELDS)
        b = ShmPlanes.create(4, FIELDS)
        reader = SegmentReader()
        try:
            arr_a = reader.array(a.name, np.int64, ShmPlanes.HEADER_SLOTS)
            reader.array(b.name, np.int64, ShmPlanes.HEADER_SLOTS)
            assert set(reader._segments) == {a.name, b.name}
            del arr_a
            reader.evict_except([b.name])
            assert set(reader._segments) == {b.name}
        finally:
            reader.close()
            a.arrays = {}
            a.header = None
            a.unlink()
            b.arrays = {}
            b.header = None
            b.unlink()
