"""Tests for the adaptive sampling-period controller (Section VII-C)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.streaming import AdaptiveSampler, SamplerConfig


class TestSamplerConfig:
    def test_defaults_valid(self):
        cfg = SamplerConfig()
        assert cfg.base_period >= cfg.min_period

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_period=0.0),
            dict(base_period=0.5, min_period=1.0),
            dict(speedup_factor=0.0),
            dict(speedup_factor=1.0),
            dict(relax_step=0.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplerConfig(**kwargs)


class TestAdaptiveSampler:
    def test_starts_at_base_period(self):
        sampler = AdaptiveSampler()
        assert sampler.period == sampler.config.base_period
        assert not sampler.in_burst_mode

    def test_anomaly_accelerates(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1))
        first = sampler.observe(True)
        second = sampler.observe(True)
        assert second < first < 8
        assert sampler.in_burst_mode

    def test_floor_respected(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1))
        for _ in range(20):
            sampler.observe(True)
        assert sampler.period == 1.0

    def test_quiet_spell_relaxes_back(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1, relax_step=1))
        for _ in range(10):
            sampler.observe(True)
        for _ in range(10):
            sampler.observe(False)
        assert sampler.period == 8.0
        assert not sampler.in_burst_mode

    def test_never_exceeds_base(self):
        sampler = AdaptiveSampler()
        for _ in range(5):
            sampler.observe(False)
        assert sampler.period == sampler.config.base_period

    def test_snapshots_multiplier(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1))
        assert sampler.snapshots_per_base_period() == pytest.approx(1.0)
        sampler.observe(True)  # period 4
        assert sampler.snapshots_per_base_period() == pytest.approx(2.0)

    def test_history_recorded(self):
        sampler = AdaptiveSampler()
        sampler.observe(True)
        sampler.observe(False)
        assert len(sampler.history) == 2

    def test_reset(self):
        sampler = AdaptiveSampler()
        sampler.observe(True)
        sampler.reset()
        assert sampler.period == sampler.config.base_period
        assert sampler.history == []

    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_period_always_in_bounds(self, signals):
        sampler = AdaptiveSampler()
        cfg = sampler.config
        for signal in signals:
            period = sampler.observe(signal)
            assert cfg.min_period <= period <= cfg.base_period

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_burst_mode_iff_recent_anomalies(self, signals):
        """After enough quiet observations the sampler must be back at
        the base period (no permanent burst state)."""
        sampler = AdaptiveSampler()
        for signal in signals:
            sampler.observe(signal)
        for _ in range(20):
            sampler.observe(False)
        assert not sampler.in_burst_mode
