"""Tests for the adaptive sampling-period controller (Section VII-C)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.streaming import AdaptiveSampler, SamplerConfig


class TestSamplerConfig:
    def test_defaults_valid(self):
        cfg = SamplerConfig()
        assert cfg.base_period >= cfg.min_period

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_period=0.0),
            dict(base_period=0.5, min_period=1.0),
            dict(speedup_factor=0.0),
            dict(speedup_factor=1.0),
            dict(relax_step=0.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplerConfig(**kwargs)


class TestAdaptiveSampler:
    def test_starts_at_base_period(self):
        sampler = AdaptiveSampler()
        assert sampler.period == sampler.config.base_period
        assert not sampler.in_burst_mode

    def test_anomaly_accelerates(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1))
        first = sampler.observe(True)
        second = sampler.observe(True)
        assert second < first < 8
        assert sampler.in_burst_mode

    def test_floor_respected(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1))
        for _ in range(20):
            sampler.observe(True)
        assert sampler.period == 1.0

    def test_quiet_spell_relaxes_back(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1, relax_step=1))
        for _ in range(10):
            sampler.observe(True)
        for _ in range(10):
            sampler.observe(False)
        assert sampler.period == 8.0
        assert not sampler.in_burst_mode

    def test_never_exceeds_base(self):
        sampler = AdaptiveSampler()
        for _ in range(5):
            sampler.observe(False)
        assert sampler.period == sampler.config.base_period

    def test_snapshots_multiplier(self):
        sampler = AdaptiveSampler(SamplerConfig(base_period=8, min_period=1))
        assert sampler.snapshots_per_base_period() == pytest.approx(1.0)
        sampler.observe(True)  # period 4
        assert sampler.snapshots_per_base_period() == pytest.approx(2.0)

    def test_history_recorded(self):
        sampler = AdaptiveSampler()
        sampler.observe(True)
        sampler.observe(False)
        assert len(sampler.history) == 2

    def test_reset(self):
        sampler = AdaptiveSampler()
        sampler.observe(True)
        sampler.reset()
        assert sampler.period == sampler.config.base_period
        assert sampler.history == []

    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_period_always_in_bounds(self, signals):
        sampler = AdaptiveSampler()
        cfg = sampler.config
        for signal in signals:
            period = sampler.observe(signal)
            assert cfg.min_period <= period <= cfg.base_period

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_burst_mode_iff_recent_anomalies(self, signals):
        """After enough quiet observations the sampler must be back at
        the base period (no permanent burst state)."""
        sampler = AdaptiveSampler()
        for signal in signals:
            sampler.observe(signal)
        for _ in range(20):
            sampler.observe(False)
        assert not sampler.in_burst_mode


class TestSampledCharacterizationStream:
    """The streaming driver: samplers gate who gets characterized."""

    def _stream(self, n=40, base_period=4.0):
        import numpy as np

        from repro.streaming import (
            SampledCharacterizationStream,
            SamplerConfig,
        )

        rng = np.random.default_rng(3)
        stream = SampledCharacterizationStream(
            n,
            r=0.03,
            tau=3,
            sampler_config=SamplerConfig(base_period=base_period, min_period=1.0),
        )
        return stream, rng.random((n, 2))

    def test_first_tick_never_characterizes(self):
        stream, pos = self._stream()
        tick = stream.observe(pos, range(5))
        assert tick.verdicts == {}
        assert stream.current_tick == 1

    def test_burst_devices_become_due_and_characterized(self):
        import numpy as np

        stream, pos = self._stream()
        stream.observe(pos, [])
        moved = pos.copy()
        moved[:6] = [0.5, 0.5]
        moved = np.clip(moved, 0, 1)
        # Flagged devices collapse their period toward min_period; within
        # a couple of ticks they are due and characterized as one motion.
        stream.observe(moved, range(6))
        tick = stream.observe(moved, range(6))
        assert set(tick.due) == set(range(6))
        assert all(v.is_massive for v in tick.verdicts.values())

    def test_quiet_devices_keep_steady_period(self):
        stream, pos = self._stream()
        tick = None
        for _ in range(3):
            tick = stream.observe(pos, [0])
        assert tick is not None
        assert tick.periods[0] == 1.0          # burst floor
        assert tick.periods[1] == 4.0          # steady state

    def test_verdicts_match_direct_characterization(self):
        import numpy as np

        from repro.core.characterize import Characterizer
        from repro.core.transition import Transition

        stream, pos = self._stream()
        stream.observe(pos, [])
        moved = np.clip(pos + 0.0, 0, 1)
        moved[:5] = [0.2, 0.9]
        for _ in range(4):
            tick = stream.observe(moved, range(5))
        direct = Characterizer(
            Transition.from_arrays(moved, moved, range(5), r=0.03, tau=3)
        ).characterize_all()
        for device, verdict in tick.verdicts.items():
            assert verdict.anomaly_type is direct[device].anomaly_type

    def test_engine_is_shared_across_ticks(self):
        import numpy as np

        stream, pos = self._stream()
        stream.observe(pos, [])
        moved = pos.copy()
        moved[:6] = [0.5, 0.5]
        moved = np.clip(moved, 0, 1)
        for _ in range(4):
            stream.observe(moved, range(6))
        assert stream.engine.stats.transitions >= 2

    def test_bad_shapes_rejected(self):
        import numpy as np
        import pytest as _pytest

        from repro.core.errors import ConfigurationError

        stream, pos = self._stream()
        with _pytest.raises(ConfigurationError):
            stream.observe(np.zeros((3, 2)), [])
