"""MutableGridIndex: mutation semantics and batch-index equivalence.

The load-bearing property is the contract with
:class:`~repro.core.geometry.GridIndex`: after *any* interleaving of
insert / move / remove, queries answer exactly what a freshly built
batch index over the same points answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.core.geometry import GridIndex
from repro.online import MutableGridIndex


class TestConstruction:
    def test_rejects_bad_cell(self):
        with pytest.raises(ConfigurationError):
            MutableGridIndex(0.0, 2)

    def test_rejects_bad_dim(self):
        with pytest.raises(ConfigurationError):
            MutableGridIndex(0.1, 0)

    def test_from_points_indexes_rows(self):
        pts = np.random.default_rng(0).random((30, 2))
        index = MutableGridIndex.from_points(pts, 0.06)
        assert len(index) == 30
        assert index.devices() == tuple(range(30))
        assert np.allclose(index.position(7), pts[7])

    def test_from_points_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            MutableGridIndex.from_points(np.zeros(5), 0.1)


class TestMutation:
    def test_insert_remove_roundtrip(self):
        index = MutableGridIndex(0.1, 2)
        key = index.insert(3, [0.55, 0.25])
        assert 3 in index
        assert index.key_of(3) == key
        assert index.devices_in_cell(key) == frozenset({3})
        assert index.remove(3) == key
        assert 3 not in index
        assert len(index) == 0

    def test_double_insert_rejected(self):
        index = MutableGridIndex(0.1, 2)
        index.insert(1, [0.5, 0.5])
        with pytest.raises(ConfigurationError):
            index.insert(1, [0.2, 0.2])

    def test_remove_unknown_rejected(self):
        with pytest.raises(UnknownDeviceError):
            MutableGridIndex(0.1, 2).remove(9)

    def test_move_unknown_rejected(self):
        with pytest.raises(UnknownDeviceError):
            MutableGridIndex(0.1, 2).move(9, [0.1, 0.1])

    def test_move_within_cell_keeps_key(self):
        index = MutableGridIndex(0.1, 2)
        index.insert(0, [0.51, 0.51])
        old, new = index.move(0, [0.52, 0.52])
        assert old == new == index.key_of(0)

    def test_move_across_cells_updates_buckets(self):
        index = MutableGridIndex(0.1, 2)
        index.insert(0, [0.05, 0.05])
        old, new = index.move(0, [0.95, 0.95])
        assert old != new
        assert index.devices_in_cell(old) == frozenset()
        assert index.devices_in_cell(new) == frozenset({0})

    def test_wrong_dim_rejected(self):
        index = MutableGridIndex(0.1, 2)
        with pytest.raises(DimensionMismatchError):
            index.insert(0, [0.1, 0.2, 0.3])


class TestQueryEquivalence:
    """query / query_batch must match a freshly built GridIndex exactly."""

    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_static_population_matches(self, dim, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((120, dim))
        cell = 0.06
        mutable = MutableGridIndex.from_points(pts, cell)
        batch = GridIndex(pts, cell)
        for rho in (0.0, 0.03, 0.06, 0.13):
            centers = rng.random((25, dim))
            assert mutable.query_batch(centers, rho) == batch.query_batch(
                centers, rho
            )

    @pytest.mark.parametrize("seed", list(range(6)))
    def test_random_interleaving_matches_fresh_rebuild(self, seed):
        """Insert/move/remove in random order; compare against rebuilds.

        Device ids are kept dense (0..m-1) by swapping the removed id
        with the largest one, so the surviving population maps onto the
        rows of a freshly built GridIndex.
        """
        rng = np.random.default_rng(100 + seed)
        cell = 0.08
        positions = {}
        mutable = MutableGridIndex(cell, 2)
        next_id = 0
        for op in range(200):
            roll = rng.random()
            if roll < 0.45 or not positions:
                pos = rng.random(2)
                mutable.insert(next_id, pos)
                positions[next_id] = pos
                next_id += 1
            elif roll < 0.80:
                device = int(rng.choice(sorted(positions)))
                # Mix of local drifts and long jumps.
                if rng.random() < 0.5:
                    pos = np.clip(
                        positions[device] + rng.normal(0, 0.02, 2), 0, 1
                    )
                else:
                    pos = rng.random(2)
                mutable.move(device, pos)
                positions[device] = pos
            else:
                device = int(rng.choice(sorted(positions)))
                last = next_id - 1
                if device != last:
                    # Relabel `last` as `device` to keep ids dense.
                    pos_last = positions.pop(last)
                    mutable.remove(device)
                    mutable.remove(last)
                    mutable.insert(device, pos_last)
                    positions[device] = pos_last
                else:
                    mutable.remove(device)
                    del positions[device]
                next_id -= 1
            if op % 25 == 24 and positions:
                pts = np.stack([positions[j] for j in range(next_id)])
                fresh = GridIndex(pts, cell)
                centers = rng.random((10, 2))
                for rho in (0.04, 0.09):
                    assert mutable.query_batch(centers, rho) == fresh.query_batch(
                        centers, rho
                    )
                    probe = pts[int(rng.integers(len(pts)))]
                    assert mutable.query(probe, rho) == fresh.query(probe, rho)

    def test_boundary_tolerance_matches(self):
        # Points engineered exactly rho apart must classify identically
        # in both indexes (same 1e-12 tolerance).
        pts = np.array([[0.2, 0.2], [0.26, 0.2], [0.2601, 0.2]])
        cell = 0.06
        mutable = MutableGridIndex.from_points(pts, cell)
        batch = GridIndex(pts, cell)
        assert mutable.query(pts[0], 0.06) == batch.query(pts[0], 0.06) == [0, 1]


class TestNeighborhoodFanout:
    def test_devices_near_cells_covers_ring(self):
        pts = np.array([[0.05, 0.05], [0.15, 0.05], [0.45, 0.45], [0.95, 0.95]])
        index = MutableGridIndex.from_points(pts, 0.1)
        home = index.key_of(0)
        assert index.devices_near_cells([home], 0) == {0}
        assert index.devices_near_cells([home], 1) == {0, 1}
        assert index.devices_near_cells([home], 10) == {0, 1, 2, 3}

    def test_devices_near_cells_rejects_negative_rings(self):
        index = MutableGridIndex(0.1, 2)
        with pytest.raises(ConfigurationError):
            index.devices_near_cells([(0, 0)], -1)

    def test_empty_keys_yield_empty_set(self):
        pts = np.random.default_rng(0).random((10, 2))
        index = MutableGridIndex.from_points(pts, 0.1)
        assert index.devices_near_cells([], 2) == set()
