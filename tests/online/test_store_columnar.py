"""Columnar store contracts: free-list, zero-copy views, allocation-free ticks.

The structure-of-arrays PR's acceptance tests live here:

* a hypothesis property test drives random join/leave/move sequences
  against a dict-based mirror: the id↔row map stays a bijection, rows
  are reused LIFO, and a reused row never resurrects the departed
  device's position, flag or verdict;
* the read-only view contract of ``snapshot_arrays`` /
  ``current_positions`` (``copy=True`` is the only way to get a mutable
  array);
* a ``tracemalloc`` test pins down the tentpole target: a steady-state
  tick at fixed population (measure → diff → dirty, no verdicts)
  allocates a bounded handful of numpy temporaries — never a per-device
  Python object plane;
* the vectorized snapshot path and the per-update compatibility shim
  produce identical verdicts on the same randomized stream, each tick
  also matching a fresh batch characterization (the golden contract the
  pre-refactor object store was held to).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError, UnknownDeviceError
from repro.core.transition import Transition
from repro.online import (
    DeviceStateStore,
    OnlineCharacterizationService,
    QosUpdate,
    ServiceConfig,
)


def make_store(n=6, d=2, seed=0, cell=0.06, shards=4):
    pts = np.random.default_rng(seed).random((n, d))
    return DeviceStateStore(pts, cell=cell, shards=shards)


# ----------------------------------------------------------------------
# Read-only view contract
# ----------------------------------------------------------------------
class TestViewContract:
    def test_snapshot_arrays_default_views_are_read_only(self):
        store = make_store()
        prev, cur = store.snapshot_arrays()
        assert not prev.flags.writeable and not cur.flags.writeable
        with pytest.raises(ValueError):
            cur[0] = 0.5

    def test_snapshot_views_track_store_mutations(self):
        store = make_store()
        _, cur = store.snapshot_arrays()
        store.apply(0, [0.25, 0.75], False)
        assert np.allclose(cur[0], [0.25, 0.75])

    def test_copy_opt_in_is_private_and_writable(self):
        store = make_store()
        prev, cur = store.snapshot_arrays(copy=True)
        assert prev.flags.writeable and cur.flags.writeable
        cur[0] = 0.5  # must not leak into the store
        assert not np.allclose(store.position(0), [0.5, 0.5])

    def test_current_positions_view_and_copy(self):
        store = make_store()
        view = store.current_positions()
        assert not view.flags.writeable
        private = store.current_positions(copy=True)
        assert private.flags.writeable
        store.apply(1, [0.1, 0.1], False)
        assert np.allclose(view[1], [0.1, 0.1])
        assert not np.allclose(private[1], [0.1, 0.1])

    def test_flag_and_verdict_columns_are_read_only(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.flag_vector()[0] = True
        with pytest.raises(ValueError):
            store.verdict_codes()[0] = 3

    def test_bytes_per_device_reports_columnar_footprint(self):
        store = make_store(n=100, d=2)
        # Two float64 position planes dominate: 2 * d * 8 = 32 bytes,
        # plus the flag/alive/verdict/id/shard columns (~19 bytes).
        assert 32 <= store.bytes_per_device <= 128
        assert store.nbytes >= 100 * 32


# ----------------------------------------------------------------------
# id <-> row free-list (hypothesis)
# ----------------------------------------------------------------------
def _ops():
    position = st.tuples(
        st.floats(0.0, 1.0, allow_nan=False, width=32),
        st.floats(0.0, 1.0, allow_nan=False, width=32),
    )
    device = st.integers(0, 11)
    flag = st.booleans()
    return st.lists(
        st.one_of(
            st.tuples(st.just("join"), device, position, flag),
            st.tuples(st.just("leave"), device),
            st.tuples(st.just("move"), device, position, flag),
        ),
        max_size=60,
    )


class TestFreeListProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops())
    def test_random_membership_churn_keeps_store_consistent(self, ops):
        store = make_store(n=3)
        # Mirror: device id -> (position tuple, flag).  Rows 0..2 hold
        # the seed devices 0..2.
        mirror = {
            j: (tuple(store.position(j)), False) for j in range(3)
        }
        freed: list = []  # LIFO mirror of the store's free-list
        grown_rows = 3
        for op in ops:
            kind, device = op[0], op[1]
            if kind == "join":
                pos, flag = op[2], op[3]
                if device in mirror:
                    with pytest.raises(ConfigurationError):
                        store.join(device, pos, flag)
                    continue
                row = store.join(device, pos, flag)
                if freed:
                    # Row reuse is LIFO: the most recently vacated row
                    # is handed out first.
                    assert row == freed.pop()
                else:
                    assert row == grown_rows
                    grown_rows += 1
                mirror[device] = (tuple(np.asarray(pos, dtype=float)), flag)
            elif kind == "leave":
                if device not in mirror:
                    with pytest.raises(UnknownDeviceError):
                        store.leave(device)
                    continue
                freed.append(store.leave(device))
                del mirror[device]
            else:  # move
                pos, flag = op[2], op[3]
                if device not in mirror:
                    with pytest.raises(UnknownDeviceError):
                        store.apply(device, pos, flag)
                    continue
                store.apply(device, pos, flag)
                mirror[device] = (tuple(np.asarray(pos, dtype=float)), flag)
            self._check(store, mirror)

    def _check(self, store, mirror):
        # id <-> row bijection
        assert store.n == len(mirror)
        rows = {store.row_of(j) for j in mirror}
        assert len(rows) == len(mirror)
        for j in mirror:
            assert store.id_of(store.row_of(j)) == j
        # Position / flag consistency (row reuse never resurrects the
        # departed occupant's state).
        for j, (pos, flag) in mirror.items():
            assert np.allclose(store.position(j), pos)
            assert store.is_flagged(j) == flag
            assert np.allclose(store.index.position(store.row_of(j)), pos)
        assert store.flagged_devices() == tuple(
            sorted(j for j, (_, flag) in mirror.items() if flag)
        )
        assert len(store.index) == len(mirror)
        assert sum(store.shard_sizes()) == len(mirror)

    def test_rejoined_row_starts_clean(self):
        store = make_store(n=3)
        store.apply(1, [0.9, 0.9], True)
        row = store.leave(1)
        # The scrub happens at leave time, before the row enters the
        # free-list — not lazily at reuse.
        prev, cur = store.snapshot_arrays()
        assert np.allclose(cur[row], 0.0) and np.allclose(prev[row], 0.0)
        new_row = store.join(7, [0.2, 0.3], False)
        assert new_row == row
        assert not store.is_flagged(7)
        assert np.allclose(store.position(7), [0.2, 0.3])
        prev, _ = store.snapshot_arrays()
        # Both snapshot endpoints start at the join position.
        assert np.allclose(prev[row], [0.2, 0.3])

    def test_growth_rebinds_index_zero_copy(self):
        store = make_store(n=3)
        for j in range(3, 40):
            store.join(j, [0.5, 0.5], False)
        # After growth the index must still adopt the store's plane:
        # a store write shows up in the index without an explicit move.
        store.apply(5, [0.91, 0.17], False)
        assert np.allclose(store.index.position(store.row_of(5)), [0.91, 0.17])
        assert len(store.index) == 40


# ----------------------------------------------------------------------
# Steady-state tick allocation (the tentpole target)
# ----------------------------------------------------------------------
class TestTickAllocation:
    def test_steady_tick_allocates_no_per_device_plane(self):
        n, d = 16_384, 2
        rng = np.random.default_rng(0)
        base = rng.random((n, d))
        service = OnlineCharacterizationService(
            base, ServiceConfig(r=0.03, tau=3)
        )
        flags = np.zeros(n, dtype=bool)
        cur = base.copy()

        def churn():
            movers = rng.choice(n, size=n // 100, replace=False)
            cur[movers] = np.clip(
                cur[movers] + rng.normal(0.0, 0.01, (movers.size, d)), 0, 1
            )

        for _ in range(3):  # warm caches, allocators, code paths
            churn()
            service.feed_snapshot(cur, flags)
        churn()
        tracemalloc.start()
        try:
            service.feed_snapshot(cur, flags)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # The measure -> diff -> dirty path is allowed a handful of
        # n-sized numpy temporaries (the (n, d) inequality mask and a
        # few n-length boolean vectors: ~100 KiB here) but no per-device
        # Python objects: even the cheapest per-device plane — one
        # n-length pointer list — costs 8n = 128 KiB before counting the
        # objects it points to, and blows this budget.
        assert peak < 160 * 1024, f"steady tick peak {peak} bytes"

    def test_empty_diff_tick_applies_nothing(self):
        n = 256
        rng = np.random.default_rng(1)
        base = rng.random((n, 2))
        service = OnlineCharacterizationService(
            base, ServiceConfig(r=0.03, tau=3)
        )
        out = service.feed_snapshot(base, np.zeros(n, dtype=bool))
        assert out.applied == 0 and out.verdicts == {}


# ----------------------------------------------------------------------
# Vectorized path == per-update shim path == batch golden trace
# ----------------------------------------------------------------------
class TestPathIdentity:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_snapshot_and_event_paths_agree_with_batch(self, seed):
        rng = np.random.default_rng(seed)
        n, d = 120, 2
        base = rng.random((n, d))
        cfg = ServiceConfig(r=0.05, tau=2, shards=4)
        vec = OnlineCharacterizationService(base.copy(), cfg)
        shim = OnlineCharacterizationService(base.copy(), cfg)
        positions = base.copy()
        flags = np.zeros(n, dtype=bool)
        prev_positions = positions.copy()
        for _ in range(8):
            movers = rng.choice(n, size=8, replace=False)
            for j in movers:
                j = int(j)
                sigma = 0.1 if rng.random() < 0.4 else 0.01
                positions[j] = np.clip(
                    positions[j] + rng.normal(0, sigma, d), 0, 1
                )
                flags[j] = rng.random() < 0.5
                shim.ingest(QosUpdate(j, tuple(positions[j]), bool(flags[j])))
            tick_vec = vec.feed_snapshot(positions, flags)
            tick_shim = shim.end_tick()
            assert tick_vec.verdicts.keys() == tick_shim.verdicts.keys()
            for j, a in tick_vec.verdicts.items():
                b = tick_shim.verdicts[j]
                assert (a.anomaly_type, a.rule, a.witness) == (
                    b.anomaly_type,
                    b.rule,
                    b.witness,
                ), j
            if tick_vec.verdicts:
                reference = Transition.from_arrays(
                    prev_positions,
                    positions.copy(),
                    sorted(int(x) for x in np.nonzero(flags)[0]),
                    cfg.r,
                    cfg.tau,
                )
                batch = Characterizer(reference).characterize_all()
                assert batch.keys() == tick_vec.verdicts.keys()
                for j, got in tick_vec.verdicts.items():
                    want = batch[j]
                    assert got.anomaly_type == want.anomaly_type, j
                    assert got.rule == want.rule, j
                    assert got.witness == want.witness, j
            prev_positions = positions.copy()

    def test_verdict_codes_mirror_tick_verdicts(self):
        rng = np.random.default_rng(5)
        n = 60
        base = rng.random((n, 2))
        service = OnlineCharacterizationService(
            base.copy(), ServiceConfig(r=0.05, tau=2)
        )
        positions = base.copy()
        flags = np.zeros(n, dtype=bool)
        movers = [3, 9, 21]
        for j in movers:
            positions[j] = np.clip(positions[j] + 0.15, 0, 1)
            flags[j] = True
        out = service.feed_snapshot(positions, flags)
        codes = service.store.verdict_codes()
        flagged_rows = np.nonzero(codes >= 0)[0]
        assert sorted(int(r) for r in flagged_rows) == sorted(out.verdicts)
        # A later all-clear tick wipes the column.
        flags[:] = False
        service.feed_snapshot(positions, flags)
        assert (service.store.verdict_codes() < 0).all()
