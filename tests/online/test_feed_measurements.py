"""In-service flagging: raw measurements in, verdicts out.

The service (and the sampled stream) can own the detector bank: callers
ship ``(n, d)`` QoS snapshots, the bank decides ``a_k(j)``, and the flag
diffs feed the same dirty-region invalidation as precomputed flags.
Contract: feeding measurements to a detector-owning service equals
running the same bank outside and feeding ``feed_snapshot`` — tick by
tick, verdict by verdict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.detection import DetectorSpec
from repro.io import Incident, TraceConfig, generate_trace
from repro.online import (
    LoadGenerator,
    LoadProfile,
    OnlineCharacterizationService,
    ServiceConfig,
    drive_load_measurements,
    replay_trace_online,
)
from repro.streaming import SampledCharacterizationStream

SPEC = DetectorSpec("step", {"max_step": 0.12})


def _trace(devices=40, steps=16, seed=9):
    incidents = [
        Incident(
            start=6, duration=3, devices=tuple(range(7)), service=0, drop=0.35
        ),
        Incident(
            start=11, duration=2, devices=(devices - 1,), service=1, drop=0.5
        ),
    ]
    return generate_trace(
        TraceConfig(devices=devices, steps=steps, seed=seed), incidents
    )


class TestFeedMeasurements:
    def test_equals_external_bank_plus_feed_snapshot(self):
        trace = _trace()
        n, d = trace[0].qos.shape
        config = ServiceConfig(r=0.03, tau=3)
        inside = OnlineCharacterizationService(
            trace[0].qos, config, detector=SPEC
        )
        outside = OnlineCharacterizationService(trace[0].qos, config)
        bank = SPEC.bank(n, d)
        bank.observe_batch(trace[0].qos)  # step-0 warm-up, like the service
        for step in trace[1:]:
            got = inside.feed_measurements(step.qos)
            flags = bank.observe_batch(step.qos).flags
            want = outside.feed_snapshot(step.qos, flags)
            assert got.flagged == want.flagged
            assert set(got.verdicts) == set(want.verdicts)
            for device in got.verdicts:
                assert (
                    got.verdicts[device].anomaly_type
                    is want.verdicts[device].anomaly_type
                )

    def test_requires_detector(self):
        service = OnlineCharacterizationService(np.full((4, 2), 0.5))
        with pytest.raises(ConfigurationError):
            service.feed_measurements(np.full((4, 2), 0.5))
        with pytest.raises(ConfigurationError):
            OnlineCharacterizationService(
                np.full((4, 2), 0.5), detection="bank"
            )

    def test_snapshot_diffs_bypass_error_backpressure(self):
        """A fleet-wide snapshot diff must not trip the ingest bound.

        Ticks are atomic: once the bank has observed a snapshot, the
        self-produced diff batch is applied directly — an "error"
        backpressure policy with a tiny queue must not fire mid-tick
        and leave the bank one observation ahead of the store.
        """
        rng = np.random.default_rng(6)
        initial = rng.random((50, 2))
        service = OnlineCharacterizationService(
            initial,
            ServiceConfig(r=0.03, tau=3, queue_capacity=4, backpressure="error"),
            detector=SPEC,
        )
        moved = np.clip(initial + 0.005, 0.0, 1.0)  # every device reports
        tick = service.feed_measurements(moved)
        assert tick.applied == 50
        assert service.bank.samples_seen == 2
        # An invalid snapshot is rejected before the bank consumes it.
        bad = moved.copy()
        bad[3, 1] = np.nan
        with pytest.raises(ConfigurationError):
            service.feed_measurements(bad)
        assert service.bank.samples_seen == 2

    def test_bank_exposed_and_detection_recorded(self):
        service = OnlineCharacterizationService(
            np.full((4, 2), 0.8), detector=SPEC
        )
        assert service.bank is not None
        assert service.bank.samples_seen == 1  # initial snapshot consumed
        snapshot = np.full((4, 2), 0.8)
        snapshot[2, 0] = 0.2
        tick = service.feed_measurements(snapshot)
        assert service.last_detection is not None
        assert service.last_detection.flagged_devices() == [2]
        assert tick.flagged == (2,)

    def test_scalar_plane_identical(self):
        trace = _trace(devices=25, steps=12)
        config = ServiceConfig(r=0.03, tau=3)
        bank_service = OnlineCharacterizationService(
            trace[0].qos, config, detector=SPEC
        )
        scalar_service = OnlineCharacterizationService(
            trace[0].qos, config, detector=SPEC, detection="scalar"
        )
        for step in trace[1:]:
            got = bank_service.feed_measurements(step.qos)
            want = scalar_service.feed_measurements(step.qos)
            assert got.flagged == want.flagged

    def test_replay_default_detector_tracks_prebuilt_service_radius(self):
        """The default step bank uses the *service's* r, prebuilt or not."""
        trace = _trace(devices=20, steps=8)
        prebuilt = OnlineCharacterizationService(
            trace[0].qos, ServiceConfig(r=0.1, tau=3)
        )
        via_service = replay_trace_online(trace, service=prebuilt)
        via_config = replay_trace_online(
            trace, config=ServiceConfig(r=0.1, tau=3)
        )
        assert [t.flagged for t in via_service.ticks] == [
            t.flagged for t in via_config.ticks
        ]
        prebuilt.close()
        via_config.service.close()

    def test_replay_trace_online_spec_matches_io_replay(self):
        from repro.io import replay_trace

        trace = _trace()
        online = replay_trace_online(
            trace, detector=SPEC, config=ServiceConfig(r=0.03, tau=3)
        )
        batch = replay_trace(trace, detector=SPEC, r=0.03, tau=3)
        # Tick k of the online replay is trace step k+1.
        for tick, outcome in zip(online.ticks, batch[1:]):
            assert list(tick.flagged) == outcome.flagged
            assert set(tick.verdicts) == set(outcome.verdicts)
            for device in tick.verdicts:
                assert (
                    tick.verdicts[device].anomaly_type
                    is outcome.verdicts[device].anomaly_type
                )
        online.service.close()


class TestDriveLoadMeasurements:
    def test_runs_and_flags_through_bank(self):
        profile = LoadProfile(
            devices=300, services=2, churn=0.05, flag_rate=0.3, seed=4
        )
        generator = LoadGenerator(profile)
        with OnlineCharacterizationService(
            generator.initial_positions(),
            ServiceConfig(r=0.03, tau=3),
            detector=SPEC,
        ) as service:
            result = drive_load_measurements(service, generator, ticks=6)
        assert len(result.ticks) == 6
        # Anomalous jumps (sigma 0.15) clear max_step=0.12 regularly.
        assert any(tick.flagged for tick in result.ticks)

    def test_retained_detections_are_not_aliased(self):
        generator = LoadGenerator(
            LoadProfile(devices=50, services=2, churn=0.2, flag_rate=0.5, seed=2)
        )
        snapshots = []
        with OnlineCharacterizationService(
            generator.initial_positions(),
            ServiceConfig(r=0.03, tau=3),
            detector=SPEC,
            sinks=(lambda tick: None,),
        ) as service:
            service.add_sink(
                lambda tick: snapshots.append(service.last_detection.positions)
            )
            drive_load_measurements(service, generator, ticks=3)
        assert snapshots[0] is not snapshots[1]
        assert not np.array_equal(snapshots[0], snapshots[2])

    def test_requires_detector_and_matching_fleet(self):
        generator = LoadGenerator(LoadProfile(devices=10, services=2))
        plain = OnlineCharacterizationService(generator.initial_positions())
        with pytest.raises(ConfigurationError):
            drive_load_measurements(plain, generator, ticks=1)
        mismatched = OnlineCharacterizationService(
            np.full((5, 2), 0.5), detector=SPEC
        )
        with pytest.raises(ConfigurationError):
            drive_load_measurements(mismatched, generator, ticks=1)


class TestStreamMeasurements:
    def test_observe_measurements_matches_precomputed_flags(self):
        trace = _trace(devices=30, steps=14)
        n, d = trace[0].qos.shape
        detecting = SampledCharacterizationStream(
            n, r=0.03, tau=3, detector=SPEC
        )
        plain = SampledCharacterizationStream(n, r=0.03, tau=3)
        bank = SPEC.bank(n, d)
        for step in trace:
            got = detecting.observe_measurements(step.qos)
            flags = bank.observe_batch(step.qos).flagged_devices()
            want = plain.observe(step.qos, flags)
            assert got.flagged == want.flagged
            assert got.due == want.due
            assert set(got.verdicts) == set(want.verdicts)
        detecting.close()
        plain.close()

    def test_requires_detector(self):
        stream = SampledCharacterizationStream(4, r=0.03, tau=3)
        with pytest.raises(ConfigurationError):
            stream.observe_measurements(np.full((4, 2), 0.5))
        with pytest.raises(ConfigurationError):
            SampledCharacterizationStream(4, r=0.03, tau=3, detection="bank")

    def test_bank_built_lazily(self):
        stream = SampledCharacterizationStream(4, r=0.03, tau=3, detector=SPEC)
        assert stream.bank is None
        stream.observe_measurements(np.full((4, 3), 0.8))
        assert stream.bank is not None
        assert stream.bank.shape == (4, 3)
        assert stream.last_detection is not None
        stream.close()
