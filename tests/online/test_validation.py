"""Input validation: malformed reports are rejected per-row, counted.

Satellite contract of the fault-tolerance PR: garbage on the ingest
queue (unknown device, wrong dimension, NaN, inf, out-of-range) and
garbage measurement frames must not crash the tick or desync the store
— each bad input is dropped (or, in ``sanitize`` mode, repaired),
tallied on ``service.rejected`` and the
``repro_service_rejected_total{reason}`` counter, and every well-formed
report in the same batch still lands.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, DimensionMismatchError
from repro.detection.banks import DetectorSpec
from repro.obs.metrics import _reset_global_registry, get_registry
from repro.online import (
    OnlineCharacterizationService,
    QosUpdate,
    ServiceConfig,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    _reset_global_registry()
    yield
    _reset_global_registry()


@pytest.fixture
def service():
    base = np.random.default_rng(0).random((12, 2))
    with OnlineCharacterizationService(
        base, ServiceConfig(r=0.05, tau=2)
    ) as svc:
        yield svc


def _counter_value(reason):
    family = get_registry().counter(
        "repro_service_rejected_total", "", labelnames=("reason",)
    )
    return family.labels(reason=reason).value


class TestQueuePathRejection:
    @pytest.mark.parametrize(
        "update, reason",
        [
            (QosUpdate(999, (0.5, 0.5), False), "unknown-device"),
            (QosUpdate(1, (0.5, 0.5, 0.5), False), "dimension-mismatch"),
            (QosUpdate(1, (float("nan"), 0.5), False), "nan"),
            (QosUpdate(1, (float("inf"), 0.5), True), "inf"),
            (QosUpdate(1, (1.5, 0.5), True), "out-of-range"),
        ],
    )
    def test_each_reason_is_dropped_and_counted(self, service, update, reason):
        before = service.store.current_positions()[1].copy()
        service.ingest(update)
        tick = service.end_tick()
        assert tick.applied == 0
        assert service.rejected == {reason: 1}
        assert _counter_value(reason) == 1
        # The store never saw the bad row.
        assert np.array_equal(
            service.store.current_positions()[1], before
        )

    def test_good_rows_in_a_poisoned_batch_still_land(self, service):
        target = service.store.current_positions()[3].copy()
        service.ingest_many(
            [
                QosUpdate(2, (float("nan"), 0.5), True),
                QosUpdate(3, (0.25, 0.75), True),
                QosUpdate(999, (0.5, 0.5), False),
            ]
        )
        tick = service.end_tick()
        assert tick.applied == 1
        assert service.rejected == {"nan": 1, "unknown-device": 1}
        assert np.allclose(
            service.store.current_positions()[3], (0.25, 0.75)
        )
        assert not np.array_equal(
            service.store.current_positions()[3], target
        )

    def test_negative_coordinate_is_out_of_range(self, service):
        service.ingest(QosUpdate(0, (-0.1, 0.5), False))
        service.end_tick()
        assert service.rejected == {"out-of-range": 1}

    def test_rejections_accumulate_across_ticks(self, service):
        for _ in range(3):
            service.ingest(QosUpdate(999, (0.5, 0.5), False))
            service.end_tick()
        assert service.rejected == {"unknown-device": 3}
        assert _counter_value("unknown-device") == 3


class TestFramePathRejection:
    def _raw_service(self, validation):
        base = np.random.default_rng(1).random((10, 2))
        return OnlineCharacterizationService(
            base,
            ServiceConfig(r=0.05, tau=2, validation=validation),
            detector=DetectorSpec("step", {"max_step": 0.2}),
            detection="bank",
        )

    @pytest.mark.parametrize(
        "poison, reason",
        [(np.nan, "nan"), (np.inf, "inf"), (4.2, "out-of-range")],
    )
    def test_strict_counts_then_raises(self, poison, reason):
        with self._raw_service("strict") as service:
            frame = np.full((10, 2), 0.5)
            frame[4, 0] = poison
            with pytest.raises(ConfigurationError, match="strict"):
                service.feed_measurements(frame)
            assert service.rejected == {reason: 1}
            assert _counter_value(reason) == 1
            # Nothing was observed or applied beyond the constructor's
            # warm-up: the next clean frame is tick 1, not tick 2.
            assert service.bank.samples_seen == 1
            tick = service.feed_measurements(np.full((10, 2), 0.5))
            assert tick.tick == 1
            assert service.bank.samples_seen == 2

    @pytest.mark.parametrize(
        "poison, reason",
        [(np.nan, "nan"), (np.inf, "inf"), (4.2, "out-of-range")],
    )
    def test_sanitize_repairs_bad_rows(self, poison, reason):
        with self._raw_service("sanitize") as service:
            before = service.store.current_positions()[4].copy()
            frame = np.full((10, 2), 0.5)
            frame[4, 0] = poison
            tick = service.feed_measurements(frame)
            assert tick.tick == 1
            assert service.rejected == {reason: 1}
            # The bad row kept its stored position; the rest applied.
            assert np.array_equal(
                service.store.current_positions()[4], before
            )
            assert np.allclose(service.store.current_positions()[5], 0.5)

    def test_wrong_shape_always_raises(self):
        for mode in ("strict", "sanitize"):
            with self._raw_service(mode) as service:
                with pytest.raises(DimensionMismatchError):
                    service.feed_measurements(np.full((4, 2), 0.5))
                assert service.rejected == {"dimension-mismatch": 1}

    def test_validation_mode_is_validated(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(validation="lenient")
