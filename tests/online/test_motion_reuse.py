"""Cross-tick motion-family reuse: sound carry, fewer recomputations.

The service contract: with ``reuse_motions`` on, every tick's verdicts
are still identical to a fresh batch pass (the carry only skips
re-deriving facts the locality theorem guarantees are unchanged), while
strictly fewer motion families are enumerated on churny streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neighborhood import MotionCache
from repro.core.transition import Snapshot, Transition
from repro.engine import CharacterizationEngine, EngineConfig
from repro.online import OnlineCharacterizationService, QosUpdate, ServiceConfig


def _transition(rng, n=30, r=0.05, tau=2):
    prev = rng.random((n, 2))
    cur = np.clip(prev + rng.normal(0, 0.01, (n, 2)), 0, 1)
    return Transition(Snapshot(prev), Snapshot(cur), range(n), r, tau)


class TestMotionCacheCarry:
    def test_carry_seeds_only_requested_devices(self):
        rng = np.random.default_rng(0)
        t1 = _transition(rng)
        cache = MotionCache(t1)
        for j in t1.flagged_sorted:
            cache.family(j)
        t2 = _transition(rng)
        carried = MotionCache.carry_from(cache, t2, [0, 1, 2, 999])
        assert carried.transition is t2
        assert carried.carried == 3  # 999 was never cached
        assert 0 in carried and 3 not in carried
        assert carried.kernel == cache.kernel

    def test_carried_hit_counts_once_per_device(self):
        rng = np.random.default_rng(1)
        t1 = _transition(rng)
        cache = MotionCache(t1)
        cache.family(0)
        t2 = _transition(rng)
        carried = MotionCache.carry_from(cache, t2, [0])
        assert carried.family(0) is cache.family(0)
        assert carried.family(0) is not None  # second hit
        assert carried.carried_used == 1
        assert carried.expansions == 0

    def test_carried_family_values_equal_fresh_ones(self):
        """On an unchanged transition the carried families are exact."""
        rng = np.random.default_rng(2)
        t1 = _transition(rng)
        cache = MotionCache(t1)
        for j in t1.flagged_sorted:
            cache.family(j)
        t2 = Transition(
            Snapshot(t1.previous.positions.copy()),
            Snapshot(t1.current.positions.copy()),
            t1.flagged,
            t1.r,
            t1.tau,
        )
        carried = MotionCache.carry_from(cache, t2, t1.flagged_sorted)
        fresh = MotionCache(t2)
        for j in t1.flagged_sorted:
            assert carried.family(j) == fresh.family(j)
        assert carried.expansions == 0


def _drive(base, flagged, *, reuse, ticks=6, r=0.05, tau=2, seed=1):
    service = OnlineCharacterizationService(
        base.copy(),
        ServiceConfig(r=r, tau=tau, reuse_motions=reuse),
    )
    rng = np.random.default_rng(seed)
    pos = base.copy()
    for dev in flagged:
        pos[dev] = np.clip(pos[dev] + 0.04, 0, 1)
        service.ingest(QosUpdate(dev, tuple(pos[dev]), True))
    service.end_tick()
    service.end_tick()  # absorb the setup move carry
    results = []
    for _ in range(ticks):
        movers = rng.choice(flagged, size=3, replace=False)
        for dev in movers:
            dev = int(dev)
            pos[dev] = np.clip(pos[dev] + rng.normal(0, 0.01, 2), 0, 1)
            service.ingest(QosUpdate(dev, tuple(pos[dev]), True))
        results.append(service.end_tick())
    return service, results


class TestServiceMotionReuse:
    @pytest.fixture(scope="class")
    def scenario(self):
        rng = np.random.default_rng(0)
        base = rng.random((400, 2))
        flagged = sorted(int(j) for j in rng.choice(400, 30, replace=False))
        return base, flagged

    def test_verdicts_identical_to_batch_with_reuse(self, scenario):
        base, flagged = scenario
        _, ticks = _drive(base, flagged, reuse=True)
        engine = CharacterizationEngine(EngineConfig())
        for tick in ticks:
            fresh = engine.characterize(tick.transition)
            assert tick.verdicts.keys() == fresh.keys()
            for j, got in tick.verdicts.items():
                want = fresh[j]
                assert got.anomaly_type == want.anomaly_type, (tick.tick, j)
                assert got.rule == want.rule, (tick.tick, j)
                assert got.witness == want.witness, (tick.tick, j)

    def test_reuse_recomputes_strictly_fewer_families(self, scenario):
        base, flagged = scenario
        with_reuse, _ = _drive(base, flagged, reuse=True)
        without, _ = _drive(base, flagged, reuse=False)
        assert (
            with_reuse.stats.families_recomputed
            < without.stats.families_recomputed
        )
        assert with_reuse.stats.families_reused > 0
        assert without.stats.families_reused == 0

    def test_tick_and_sink_report_family_counts(self, scenario):
        from repro.online import MetricsSink

        base, flagged = scenario
        service = OnlineCharacterizationService(
            base.copy(), ServiceConfig(r=0.05, tau=2, reuse_motions=True)
        )
        sink = MetricsSink()
        service.add_sink(sink)
        pos = base.copy()
        for dev in flagged:
            pos[dev] = np.clip(pos[dev] + 0.04, 0, 1)
            service.ingest(QosUpdate(dev, tuple(pos[dev]), True))
        service.end_tick()
        tick = service.end_tick()
        assert tick.families_recomputed + tick.families_reused >= 0
        assert sink.families_recomputed == service.stats.families_recomputed
        assert sink.families_reused == service.stats.families_reused
        payload = sink.as_dict()
        assert "families_recomputed" in payload
        assert "families_reused" in payload

    def test_randomized_stream_reuse_matches_no_reuse_verdicts(self):
        """Same stream, reuse on vs off: identical verdict history."""
        rng = np.random.default_rng(7)
        base = rng.random((200, 2))
        flagged = sorted(int(j) for j in rng.choice(200, 16, replace=False))
        _, ticks_a = _drive(base, flagged, reuse=True, seed=3)
        _, ticks_b = _drive(base, flagged, reuse=False, seed=3)
        assert len(ticks_a) == len(ticks_b)
        for ta, tb in zip(ticks_a, ticks_b):
            assert ta.verdicts.keys() == tb.verdicts.keys()
            for j in ta.verdicts:
                a, b = ta.verdicts[j], tb.verdicts[j]
                assert a.anomaly_type == b.anomaly_type, (ta.tick, j)
                assert a.rule == b.rule, (ta.tick, j)
                assert a.witness == b.witness, (ta.tick, j)


class TestCliFlags:
    def test_reuse_motions_flag_round_trip(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--devices", "10"])
        assert args.reuse_motions is True
        args = parser.parse_args(["serve", "--devices", "10", "--no-reuse-motions"])
        assert args.reuse_motions is False
        args = parser.parse_args(["replay", "--reuse-motions"])
        assert args.reuse_motions is True

    def test_service_config_receives_flag(self):
        from repro.cli import _service_config, build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--no-reuse-motions"])
        assert _service_config(args).reuse_motions is False
