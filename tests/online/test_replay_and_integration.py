"""Replay pipeline + the online mode of the network and streaming drivers.

Three integrations must be verdict-identical to their batch twins:

* :func:`replay_trace_online` vs :func:`repro.io.synthetic.replay_trace`
  on the same trace (flagged sets and verdicts per step);
* ``NetworkMonitor(incremental=True)`` vs the default monitor on the
  same fault course;
* ``SampledCharacterizationStream(incremental=True)`` vs the batch
  stream on the same snapshot sequence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.detection.threshold import StepThresholdDetector
from repro.io.synthetic import Incident, TraceConfig, generate_trace, replay_trace
from repro.network import (
    GatewayFault,
    IspTopology,
    NetworkFault,
    NetworkMonitor,
    ReportingPolicy,
    TopologyConfig,
)
from repro.online import (
    LoadGenerator,
    LoadProfile,
    OnlineCharacterizationService,
    ServiceConfig,
    diff_updates,
    drive_load,
    replay_trace_online,
)
from repro.streaming import SampledCharacterizationStream


def detector_factory():
    return StepThresholdDetector(max_step=0.12)


@pytest.fixture(scope="module")
def incident_trace():
    config = TraceConfig(devices=120, services=2, steps=16, seed=3)
    incidents = [
        Incident(start=4, duration=2, devices=tuple(range(30, 38)), service=0, drop=0.3),
        Incident(start=9, duration=2, devices=(77,), service=1, drop=0.4),
    ]
    return generate_trace(config, incidents)


class TestDiffUpdates:
    def test_only_changes_emit_events(self):
        prev = np.full((4, 2), 0.5)
        cur = prev.copy()
        cur[1] += 0.1
        updates = diff_updates(prev, cur, [False, False, True, False],
                               [False, False, False, True])
        by_device = {u.device: u for u in updates}
        assert set(by_device) == {1, 2, 3}
        assert by_device[1].flagged is False
        assert by_device[2].flagged is False  # flag lowered
        assert by_device[3].flagged is True

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            diff_updates(np.zeros((3, 2)), np.zeros((4, 2)), [0] * 3, [0] * 4)

    def test_flag_vector_length_rejected(self):
        with pytest.raises(ConfigurationError):
            diff_updates(np.zeros((3, 2)), np.zeros((3, 2)), [0] * 2, [0] * 3)
        with pytest.raises(ConfigurationError):
            diff_updates(np.zeros((3, 2)), np.zeros((3, 2)), [0] * 3, [0] * 4)

    def test_vectorized_diff_matches_per_device_loop(self):
        # The changed-device selection is one np.nonzero over the moved /
        # flag-diff masks; it must agree with the naive per-device scan.
        rng = np.random.default_rng(11)
        n, d = 300, 3
        prev = rng.random((n, d))
        cur = prev.copy()
        movers = rng.choice(n, size=40, replace=False)
        cur[movers] = np.clip(cur[movers] + 0.01, 0, 1)
        prev_flags = rng.random(n) < 0.2
        cur_flags = prev_flags.copy()
        toggles = rng.choice(n, size=25, replace=False)
        cur_flags[toggles] = ~cur_flags[toggles]
        updates = diff_updates(prev, cur, prev_flags, cur_flags)
        expected = [
            (j, tuple(cur[j]), bool(cur_flags[j]))
            for j in range(n)
            if np.any(prev[j] != cur[j]) or bool(prev_flags[j]) != bool(cur_flags[j])
        ]
        assert [(u.device, u.position, u.flagged) for u in updates] == expected
        # Devices are emitted in ascending order (np.nonzero contract).
        assert [u.device for u in updates] == sorted(u.device for u in updates)


class TestTraceReplayEquivalence:
    def test_flagged_and_verdicts_match_batch_replay(self, incident_trace):
        batch = replay_trace(incident_trace, detector_factory, r=0.03, tau=3)
        online = replay_trace_online(
            incident_trace, detector_factory, ServiceConfig(r=0.03, tau=3)
        )
        # Batch replay emits one result per step including step 0 (which
        # never characterizes); the online replay starts at step 1.
        assert len(online.ticks) == len(batch) - 1
        for tick, reference in zip(online.ticks, batch[1:]):
            assert list(tick.flagged) == reference.flagged
            assert set(tick.verdicts) == set(reference.verdicts)
            for device, got in tick.verdicts.items():
                want = reference.verdicts[device]
                assert got.anomaly_type == want.anomaly_type, (tick.tick, device)
                assert got.rule == want.rule, (tick.tick, device)
                assert got.witness == want.witness, (tick.tick, device)

    def test_incident_devices_classified(self, incident_trace):
        online = replay_trace_online(
            incident_trace, detector_factory, ServiceConfig(r=0.03, tau=3)
        )
        flagged_ever = set()
        for tick in online.ticks:
            flagged_ever.update(tick.flagged)
        assert set(range(30, 38)) <= flagged_ever
        assert 77 in flagged_ever
        assert online.total_updates > 0
        assert online.total_recomputed > 0

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            replay_trace_online([], detector_factory)

    def test_service_plus_config_rejected(self):
        trace = generate_trace(TraceConfig(devices=5, steps=3))
        service = OnlineCharacterizationService(trace[0].qos)
        with pytest.raises(ConfigurationError):
            replay_trace_online(
                trace, detector_factory, ServiceConfig(), service=service
            )


class TestLoadGenerator:
    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(churn=0.0)
        with pytest.raises(ConfigurationError):
            LoadProfile(flag_rate=1.5)

    def test_deterministic_given_seed(self):
        a = LoadGenerator(LoadProfile(devices=50, seed=9))
        b = LoadGenerator(LoadProfile(devices=50, seed=9))
        assert np.array_equal(a.initial_positions(), b.initial_positions())
        assert a.tick_updates() == b.tick_updates()

    def test_burst_produces_coordinated_flags(self):
        profile = LoadProfile(
            devices=60, churn=0.02, flag_rate=0.0, burst_every=2, burst_size=6,
            seed=4,
        )
        generator = LoadGenerator(profile)
        first = generator.tick_updates()
        assert not any(u.flagged for u in first)
        second = generator.tick_updates()
        assert sum(u.flagged for u in second) == 6

    def test_drive_load_end_to_end(self):
        generator = LoadGenerator(
            LoadProfile(devices=80, churn=0.05, burst_every=3, seed=2)
        )
        service = OnlineCharacterizationService(
            generator.initial_positions(), ServiceConfig(r=0.03, tau=3)
        )
        result = drive_load(service, generator, 5)
        assert len(result.ticks) == 5
        assert result.total_updates == service.stats.updates_applied
        assert result.elapsed_seconds >= 0.0

    def test_drive_load_rejects_bad_ticks(self):
        generator = LoadGenerator(LoadProfile(devices=10))
        service = OnlineCharacterizationService(generator.initial_positions())
        with pytest.raises(ConfigurationError):
            drive_load(service, generator, 0)


def make_monitor(**kwargs) -> NetworkMonitor:
    topo = IspTopology(
        TopologyConfig(
            cores=2,
            aggregations_per_core=2,
            access_per_aggregation=2,
            gateways_per_access=10,
        )
    )
    return NetworkMonitor(
        topo, policy=ReportingPolicy.ALL, tau=3, seed=42, **kwargs
    )


def fault_course(monitor):
    results = list(monitor.run(3))
    monitor.injector.inject(NetworkFault("acc-0-0-0", severity=0.4, duration=2))
    monitor.injector.inject(GatewayFault(device_id=3, severity=0.6, duration=2))
    results += monitor.run(4)
    return results


class TestMonitorIncrementalMode:
    def test_verdicts_and_reports_identical_to_batch(self):
        batch = fault_course(make_monitor())
        online = fault_course(make_monitor(incremental=True))
        for got, want in zip(online, batch):
            assert got.flagged == want.flagged
            assert set(got.verdicts) == set(want.verdicts)
            for device in want.verdicts:
                a, b = got.verdicts[device], want.verdicts[device]
                assert a.anomaly_type == b.anomaly_type, (got.tick, device)
                assert a.rule == b.rule, (got.tick, device)
                assert a.witness == b.witness, (got.tick, device)
            assert [
                (r.device_id, r.anomaly_type) for r in got.reports
            ] == [(r.device_id, r.anomaly_type) for r in want.reports]

    def test_service_owned_lazily_and_shares_engine(self):
        monitor = make_monitor(incremental=True)
        assert monitor.service is None
        monitor.tick()
        assert monitor.service is not None
        assert monitor.service.engine is monitor.engine

    def test_service_config_inherits_monitor_parameters(self):
        monitor = make_monitor(
            incremental=True, service_config=ServiceConfig(r=0.2, tau=50, shards=3)
        )
        monitor.tick()
        assert monitor.service.config.r == monitor._r  # noqa: SLF001
        assert monitor.service.config.tau == monitor._tau  # noqa: SLF001
        assert monitor.service.config.shards == 3

    def test_batch_mode_reuses_indexes_across_stable_ticks(self):
        # A band (SLA) detector keeps the fault footprint flagged for
        # the whole degradation, so consecutive ticks see the same
        # flagged set — the index-reuse case.
        from repro.detection.threshold import BandThresholdDetector

        monitor = make_monitor(
            detector_factory=lambda: BandThresholdDetector(low=0.7)
        )
        monitor.run(3)
        monitor.injector.inject(
            NetworkFault("acc-0-0-0", severity=0.4, duration=4)
        )
        results = monitor.run(3)
        transitions = [r.transition for r in results if r.transition]
        assert len(transitions) >= 2
        assert tuple(results[1].flagged) == tuple(results[2].flagged)
        # Same fault footprint tick after tick: consecutive transitions
        # must share the boundary index object.
        assert transitions[2]._index_prev is transitions[1]._index_cur  # noqa: SLF001


class TestStreamIncrementalMode:
    def drive(self, stream, seed=0, ticks=12, n=60):
        rng = np.random.default_rng(seed)
        positions = rng.random((n, 2))
        flags = np.zeros(n, dtype=bool)
        emitted = []
        for _ in range(ticks):
            movers = rng.choice(n, size=6, replace=False)
            for j in movers:
                j = int(j)
                positions[j] = np.clip(
                    positions[j] + rng.normal(0, 0.05, 2), 0, 1
                )
                flags[j] = rng.random() < 0.4
            emitted.append(
                stream.observe(positions, [int(x) for x in np.nonzero(flags)[0]])
            )
        return emitted

    def test_emitted_verdicts_identical_to_batch_stream(self):
        batch = self.drive(
            SampledCharacterizationStream(60, r=0.05, tau=2)
        )
        online = self.drive(
            SampledCharacterizationStream(60, r=0.05, tau=2, incremental=True)
        )
        for got, want in zip(online, batch):
            assert got.flagged == want.flagged
            assert got.due == want.due
            assert set(got.verdicts) == set(want.verdicts)
            for device in want.verdicts:
                a, b = got.verdicts[device], want.verdicts[device]
                assert a.anomaly_type == b.anomaly_type, (got.tick, device)
                assert a.rule == b.rule, (got.tick, device)
                assert a.witness == b.witness, (got.tick, device)

    def test_service_created_lazily(self):
        stream = SampledCharacterizationStream(10, r=0.03, tau=2, incremental=True)
        assert stream.service is None
        stream.observe(np.full((10, 2), 0.5), [])
        assert stream.service is not None
        assert stream.service.engine is stream.engine
