"""OnlineCharacterizationService: the verdict-identity contract.

The service may cache, invalidate lazily, shard, batch and reuse
indexes — but after every ``end_tick`` its verdict map must equal a
fresh batch characterization of the same transition (type, rule,
witness).  The randomized drive below checks that on every tick of
adversarially mixed update streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError, QueueFullError
from repro.core.transition import Snapshot, Transition
from repro.core.types import AnomalyType
from repro.engine import CharacterizationEngine
from repro.online import (
    MetricsSink,
    OnlineCharacterizationService,
    QosUpdate,
    ReportSink,
    ServiceConfig,
)


def assert_verdicts_match_batch(out, reference_transition):
    """Service verdicts == fresh batch pass (type / rule / witness)."""
    batch = Characterizer(reference_transition).characterize_all()
    assert set(out.verdicts) == set(batch)
    for device, got in out.verdicts.items():
        want = batch[device]
        assert got.anomaly_type == want.anomaly_type, device
        assert got.rule == want.rule, device
        assert got.witness == want.witness, device


def random_drive(service, rng, n, d, ticks, *, churn, flag_p, jump_p):
    """Feed a random walk with random flag toggles; verify every tick.

    Maintains its *own* mirror of positions and flags, so the reference
    transition is built independently of the service internals.
    """
    positions = service.store.snapshot_arrays(copy=True)[1]
    flags = np.zeros(n, dtype=bool)
    for _ in range(ticks):
        k = max(1, int(round(churn * n)))
        movers = rng.choice(n, size=k, replace=False)
        for j in movers:
            j = int(j)
            sigma = 0.12 if rng.random() < jump_p else 0.01
            positions[j] = np.clip(
                positions[j] + rng.normal(0, sigma, d), 0, 1
            )
            flags[j] = rng.random() < flag_p
            service.ingest(
                QosUpdate(j, tuple(positions[j]), bool(flags[j]))
            )
        previous = service.store.snapshot_arrays(copy=True)[0]
        out = service.end_tick()
        flagged = [int(x) for x in np.nonzero(flags)[0]]
        assert list(out.flagged) == flagged
        if flagged:
            reference = Transition(
                Snapshot(previous),
                Snapshot(positions.copy()),
                flagged,
                service.config.r,
                service.config.tau,
            )
            assert_verdicts_match_batch(out, reference)
        else:
            assert out.verdicts == {}


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"queue_capacity": 0},
            {"max_batch": 0},
            {"backpressure": "spill"},
            {"backend": "threads"},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs)

    def test_cell_matches_transition_indexes(self):
        config = ServiceConfig(r=0.03)
        assert config.cell == pytest.approx(0.06)
        assert ServiceConfig(r=0.0).cell == pytest.approx(1e-6)


class TestVerdictEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_streams_match_batch_every_tick(self, seed):
        rng = np.random.default_rng(seed)
        n, d = 150, 2
        service = OnlineCharacterizationService(
            rng.random((n, d)), ServiceConfig(r=0.05, tau=2, shards=4)
        )
        random_drive(
            service, rng, n, d, ticks=10, churn=0.12, flag_p=0.5, jump_p=0.3
        )
        assert service.stats.verdicts_recomputed > 0

    @pytest.mark.parametrize("seed", [3, 4])
    def test_low_churn_streams_match_batch_and_reuse(self, seed):
        # Localized churn: dirty bands cover a sliver of the cube, so
        # most verdicts must come from cache — and still match batch.
        rng = np.random.default_rng(seed)
        n, d = 150, 2
        service = OnlineCharacterizationService(
            rng.random((n, d)), ServiceConfig(r=0.02, tau=2, shards=4)
        )
        random_drive(
            service, rng, n, d, ticks=12, churn=0.03, flag_p=0.5, jump_p=0.1
        )
        assert service.stats.verdicts_reused > 0
        assert service.stats.verdicts_recomputed > 0

    def test_quiet_ticks_reuse_everything(self):
        rng = np.random.default_rng(7)
        n = 80
        service = OnlineCharacterizationService(
            rng.random((n, 2)), ServiceConfig(r=0.04, tau=2)
        )
        # One busy tick: a cluster jumps together and gets flagged.
        cluster = list(range(10, 16))
        offset = np.array([0.2, 0.2])
        for j in cluster:
            pos = np.clip(service.store.position(j) + offset, 0, 1)
            service.ingest(QosUpdate(j, tuple(pos), True))
        busy = service.end_tick()
        assert busy.recomputed == tuple(cluster)
        # Next tick the trajectories settle (prev catches up): the carry
        # forces one more recomputation round ...
        settle = service.end_tick()
        assert settle.recomputed == tuple(cluster)
        # ... after which nothing changes and the cache serves everyone.
        for _ in range(3):
            quiet = service.end_tick()
            assert quiet.recomputed == ()
            assert quiet.reused == tuple(cluster)
            assert quiet.verdicts.keys() == set(cluster)
        # Stationary flagged cluster: still a valid batch answer.
        reference = Transition(
            Snapshot(service.store.snapshot_arrays()[0]),
            Snapshot(service.store.snapshot_arrays()[1]),
            cluster,
            service.config.r,
            service.config.tau,
        )
        assert_verdicts_match_batch(quiet, reference)

    def test_unflagged_churn_costs_no_recomputation(self):
        rng = np.random.default_rng(11)
        n = 100
        service = OnlineCharacterizationService(
            rng.random((n, 2)), ServiceConfig(r=0.03, tau=2)
        )
        for j in (0, 1, 2):
            service.ingest(QosUpdate(j, (0.5 + 0.01 * j, 0.5), True))
        service.end_tick()
        service.end_tick()  # consume the move carry
        # Healthy devices far away drift; no flagged verdict can change.
        for _ in range(3):
            for j in rng.choice(range(50, 100), size=10, replace=False):
                j = int(j)
                pos = np.clip(
                    service.store.position(j) + rng.normal(0, 0.005, 2), 0, 1
                )
                service.ingest(QosUpdate(j, tuple(pos), False))
            out = service.end_tick()
            assert out.recomputed == ()
            assert set(out.reused) == {0, 1, 2}

    def test_incremental_false_recomputes_all(self):
        rng = np.random.default_rng(5)
        service = OnlineCharacterizationService(
            rng.random((40, 2)),
            ServiceConfig(r=0.05, tau=2, incremental=False),
        )
        for j in range(4):
            service.ingest(QosUpdate(j, (0.5, 0.5 + 0.01 * j), True))
        service.end_tick()
        out = service.end_tick()  # no updates at all
        assert out.recomputed == tuple(range(4))
        assert out.reused == ()


class TestIndexReuse:
    def test_stable_flagged_set_shares_index_work(self):
        rng = np.random.default_rng(2)
        service = OnlineCharacterizationService(
            rng.random((60, 2)), ServiceConfig(r=0.04, tau=2)
        )
        for j in range(5):
            service.ingest(QosUpdate(j, (0.4 + 0.01 * j, 0.4), True))
        service.end_tick()
        assert service.stats.index_reuses == 0
        for _ in range(3):
            service.end_tick()
        assert service.stats.index_reuses == 3

    def test_changed_flagged_set_rebuilds(self):
        rng = np.random.default_rng(2)
        service = OnlineCharacterizationService(
            rng.random((60, 2)), ServiceConfig(r=0.04, tau=2)
        )
        service.ingest(QosUpdate(0, (0.4, 0.4), True))
        service.end_tick()
        service.ingest(QosUpdate(1, (0.6, 0.6), True))
        service.end_tick()
        assert service.stats.index_reuses == 0

    def test_reuse_can_be_disabled(self):
        rng = np.random.default_rng(2)
        service = OnlineCharacterizationService(
            rng.random((60, 2)),
            ServiceConfig(r=0.04, tau=2, reuse_indexes=False),
        )
        service.ingest(QosUpdate(0, (0.4, 0.4), True))
        service.end_tick()
        service.end_tick()
        assert service.stats.index_reuses == 0


class TestBackpressure:
    def config(self, policy, capacity=4):
        return ServiceConfig(
            r=0.03, tau=2, queue_capacity=capacity, backpressure=policy
        )

    def updates(self, count):
        return [
            QosUpdate(j, (0.1 + 0.001 * j, 0.1), False) for j in range(count)
        ]

    def test_error_policy_raises(self):
        service = OnlineCharacterizationService(
            np.full((10, 2), 0.5), self.config("error")
        )
        for update in self.updates(4):
            service.ingest(update)
        with pytest.raises(QueueFullError):
            service.ingest(QosUpdate(9, (0.9, 0.9), False))

    def test_drop_oldest_policy_sheds_load(self):
        service = OnlineCharacterizationService(
            np.full((10, 2), 0.5), self.config("drop-oldest")
        )
        accepted = service.ingest_many(self.updates(7))
        assert accepted == 4
        assert service.stats.updates_dropped == 3
        assert service.queued == 4

    def test_block_policy_applies_inline(self):
        service = OnlineCharacterizationService(
            np.full((10, 2), 0.5), self.config("block")
        )
        accepted = service.ingest_many(self.updates(7))
        assert accepted == 7
        assert service.stats.updates_dropped == 0
        assert service.stats.inline_drains >= 1
        # Inline-drained events still belong to this tick's accounting.
        out = service.end_tick()
        assert service.queued == 0
        assert out.applied == 7
        assert service.stats.updates_applied == 7

    def test_max_batch_drains_in_chunks(self):
        service = OnlineCharacterizationService(
            np.full((10, 2), 0.5),
            ServiceConfig(r=0.03, tau=2, max_batch=2, queue_capacity=100),
        )
        service.ingest_many(self.updates(5))
        out = service.end_tick()
        assert out.applied == 5
        assert service.queued == 0


class TestSinks:
    def test_sinks_see_every_tick(self):
        rng = np.random.default_rng(0)
        metrics = MetricsSink()
        reports = ReportSink(kinds=(AnomalyType.ISOLATED,))
        service = OnlineCharacterizationService(
            rng.random((30, 2)),
            ServiceConfig(r=0.03, tau=2),
            sinks=(metrics,),
        )
        service.add_sink(reports)
        service.ingest(QosUpdate(3, (0.9, 0.9), True))
        service.end_tick()
        service.end_tick()
        assert metrics.ticks == 2
        assert metrics.verdict_counts["isolated"] >= 1
        assert all(row[2] is AnomalyType.ISOLATED for row in reports.rows)
        assert {row[1] for row in reports.rows} == {3}

    def test_shared_engine_accumulates_stats(self):
        engine = CharacterizationEngine()
        service = OnlineCharacterizationService(
            np.full((10, 2), 0.5), ServiceConfig(r=0.03, tau=2), engine=engine
        )
        service.ingest(QosUpdate(0, (0.7, 0.7), True))
        service.end_tick()
        assert engine.stats.transitions == 1


class TestMetricsSinkTransitionCounting:
    """Regression: cached verdicts must not be re-counted every tick.

    ``tick.verdicts`` carries every flagged device (cached ones too), so
    the old sink reported a device flagged isolated for 100 quiet ticks
    as 100 isolated verdicts.  ``verdict_counts`` now counts verdict
    *transitions*; the per-tick view lives in ``verdict_tick_counts``.
    """

    def _service(self, metrics, n=30):
        rng = np.random.default_rng(1)
        return OnlineCharacterizationService(
            rng.random((n, 2)), ServiceConfig(r=0.03, tau=2), sinks=(metrics,)
        )

    def test_quiet_ticks_count_one_event_many_device_ticks(self):
        metrics = MetricsSink()
        service = self._service(metrics)
        service.ingest(QosUpdate(3, (0.9, 0.9), True))
        service.end_tick()
        for _ in range(9):
            service.end_tick()  # device 3 stays flagged, verdict cached
        assert metrics.verdict_counts["isolated"] == 1
        assert metrics.verdict_tick_counts["isolated"] == 10

    def test_unflag_then_reflag_counts_a_new_event(self):
        metrics = MetricsSink()
        service = self._service(metrics)
        service.ingest(QosUpdate(3, (0.9, 0.9), True))
        service.end_tick()
        service.ingest(QosUpdate(3, (0.9, 0.9), False))
        service.end_tick()
        service.ingest(QosUpdate(3, (0.88, 0.88), True))
        service.end_tick()
        assert metrics.verdict_counts["isolated"] == 2

    def test_changed_verdict_type_counts_as_new_event(self):
        metrics = MetricsSink()
        rng = np.random.default_rng(2)
        base = rng.random((30, 2)) * 0.2 + 0.75  # everyone far from 0.5
        service = OnlineCharacterizationService(
            base, ServiceConfig(r=0.05, tau=2), sinks=(metrics,)
        )
        # Tick 1: lone flagged device at (0.5, 0.5) — isolated.
        service.ingest(QosUpdate(0, (0.5, 0.5), True))
        service.end_tick()
        assert metrics.verdict_counts["isolated"] == 1
        # Tick 2: two companions jump there from far away.  Their arrival
        # trajectories are inconsistent with 0's stationary one, so all
        # three are isolated this tick (+2 isolated events, 0 unchanged).
        for device in (1, 2):
            service.ingest(QosUpdate(device, (0.5, 0.5), True))
        service.end_tick()
        assert metrics.verdict_counts["isolated"] == 3
        assert metrics.verdict_counts["massive"] == 0
        # Tick 3: everyone sits still — three stationary trajectories in
        # one 2r-box form a tau-dense motion and all three verdicts flip
        # to massive: three new massive events, no new isolated ones.
        service.end_tick()
        assert metrics.verdict_counts["isolated"] == 3
        assert metrics.verdict_counts["massive"] == 3
        total_events = sum(metrics.verdict_counts.values())
        total_device_ticks = sum(metrics.verdict_tick_counts.values())
        assert total_device_ticks > total_events
        payload = metrics.as_dict()
        assert payload["verdict_counts"] == metrics.verdict_counts
        assert payload["verdict_tick_counts"] == metrics.verdict_tick_counts


class TestFeedSnapshotStoreDiff:
    def test_feed_snapshot_converges_after_mid_tick_ingest(self):
        """The diff runs against the store, not the caller's `previous`.

        A mid-tick ingest moves a device inside the store; the caller's
        remembered ``previous`` snapshot no longer matches.  If the diff
        used the caller's array, a device whose caller-previous equals
        caller-current would emit no update and the store would keep the
        mid-tick position forever.
        """
        rng = np.random.default_rng(3)
        n = 20
        base = rng.random((n, 2))
        service = OnlineCharacterizationService(
            base.copy(), ServiceConfig(r=0.05, tau=2)
        )
        # Mid-tick ingest: device 0 wanders off and gets flagged.
        service.ingest(QosUpdate(0, (0.25, 0.25), True))
        # The snapshot driver, unaware of the wander, feeds a snapshot
        # where device 0 sits at its base position with a False flag.
        current = base.copy()
        current[5] = np.clip(current[5] + 0.03, 0, 1)
        flags = [False] * n
        flags[5] = True
        out = service.feed_snapshot(current, flags)
        # The store converged to the fed snapshot: device 0 back at its
        # base position and unflagged, device 5 moved and flagged.
        np.testing.assert_allclose(
            service.store.current_positions(), current
        )
        assert service.flagged_devices() == (5,)
        assert set(out.verdicts) == {5}
        assert_verdicts_match_batch(out, out.transition)

    def test_feed_snapshot_unchanged_when_store_agrees(self):
        rng = np.random.default_rng(4)
        n = 15
        base = rng.random((n, 2))
        service = OnlineCharacterizationService(
            base.copy(), ServiceConfig(r=0.05, tau=2)
        )
        current = base.copy()
        current[2] = np.clip(current[2] + 0.04, 0, 1)
        out = service.feed_snapshot(current, [j == 2 for j in range(n)])
        assert out.applied == 1  # only the genuinely changed device
        assert service.flagged_devices() == (2,)
