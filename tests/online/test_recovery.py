"""Checkpoint–restore: verdict-identical resume, format safety, retention.

The acceptance bar: checkpoint a service mid-stream, kill it, restore
into a *fresh process*, and the resumed verdict / flag / stats streams
are identical to the uninterrupted run — on the serial and the pooled
backend alike.  Plus the format contract (versioned, atomic, loud on
corruption) and the :class:`CheckpointWriter` cadence/retention sink.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import CheckpointError, ConfigurationError
from repro.detection.banks import DetectorSpec
from repro.online import (
    CheckpointWriter,
    LoadGenerator,
    LoadProfile,
    OnlineCharacterizationService,
    ServiceConfig,
    checkpoint_path,
    drive_load,
    drive_load_measurements,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    restore_service,
    save_checkpoint,
)

PROFILE = LoadProfile(devices=80, services=2, churn=0.1, flag_rate=0.3, seed=5)


def _verdict_stream(ticks):
    """The identity-relevant projection of a tick stream."""
    return [
        {
            "tick": t.tick,
            "flagged": sorted(t.flagged),
            "verdicts": {
                str(j): [
                    v.anomaly_type.name,
                    v.rule.name,
                    sorted(v.witness) if v.witness is not None else None,
                ]
                for j, v in sorted(t.verdicts.items())
            },
        }
        for t in ticks
    ]


def _fresh_service(config=None, **kwargs):
    generator = LoadGenerator(PROFILE)
    service = OnlineCharacterizationService(
        generator.initial_positions(),
        config or ServiceConfig(r=0.05, tau=2),
        **kwargs,
    )
    return service, generator


class TestRoundtrip:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_kill_and_restore_is_verdict_identical(self, tmp_path, backend):
        config = ServiceConfig(
            r=0.05,
            tau=2,
            backend=backend,
            workers=2,
            dispatch_deadline=5.0 if backend == "process" else None,
        )
        # Uninterrupted reference: 9 ticks straight through.
        service, generator = _fresh_service(config)
        with service:
            full = _verdict_stream(drive_load(service, generator, 9).ticks)
            full_stats = service.stats.as_dict()
        # Interrupted run: 4 ticks, checkpoint, drop the service on the
        # floor (simulating a kill), restore and run the remaining 5.
        service, generator = _fresh_service(config)
        with service:
            head = _verdict_stream(drive_load(service, generator, 4).ticks)
            path = save_checkpoint(service, tmp_path / "ck.npz")
        restored = restore_service(path)
        with restored:
            assert restored.current_tick == 4
            generator2 = LoadGenerator(PROFILE)
            generator2.fast_forward(4)
            tail = _verdict_stream(drive_load(restored, generator2, 5).ticks)
            resumed_stats = restored.stats.as_dict()
        assert head + tail == full
        # Aggregate event/verdict counts match; the reuse/recompute
        # split may differ on the first resumed tick (cold perf caches),
        # so compare the verdict-bearing counters only.
        for key in ("ticks", "updates_applied", "updates_dropped"):
            assert resumed_stats[key] == full_stats[key]

    def test_restore_into_fresh_process(self, tmp_path):
        # The real kill -9 scenario: the resuming interpreter shares no
        # state with the dead one.
        service, generator = _fresh_service()
        with service:
            head = _verdict_stream(drive_load(service, generator, 3).ticks)
            path = save_checkpoint(service, tmp_path / "ck.npz")
        service2, generator2 = _fresh_service()
        with service2:
            full = _verdict_stream(drive_load(service2, generator2, 6).ticks)
        script = r"""
import json, sys
from repro.online import LoadGenerator, LoadProfile, drive_load, restore_service

path, out = sys.argv[1], sys.argv[2]
profile = LoadProfile(devices=80, services=2, churn=0.1, flag_rate=0.3, seed=5)
service = restore_service(path)
generator = LoadGenerator(profile)
generator.fast_forward(service.current_tick)
with service:
    ticks = drive_load(service, generator, 3).ticks
    stream = [
        {
            "tick": t.tick,
            "flagged": sorted(t.flagged),
            "verdicts": {
                str(j): [
                    v.anomaly_type.name,
                    v.rule.name,
                    sorted(v.witness) if v.witness is not None else None,
                ]
                for j, v in sorted(t.verdicts.items())
            },
        }
        for t in ticks
    ]
with open(out, "w") as fh:
    json.dump(stream, fh)
"""
        out = tmp_path / "tail.json"
        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        subprocess.run(
            [sys.executable, "-c", script, str(path), str(out)],
            check=True,
            cwd=str(repo_root),
            env=env,
        )
        tail = json.loads(out.read_text())
        assert head + tail == full

    def test_pending_queue_travels(self, tmp_path):
        # Updates ingested but not yet drained must survive the restore
        # and drain into the same tick they would have.
        service, generator = _fresh_service()
        with service:
            drive_load(service, generator, 2)
            pending = generator.tick_updates()
            service.ingest_many(pending)
            path = save_checkpoint(service, tmp_path / "ck.npz")
            reference = _verdict_stream([service.end_tick()])
        restored = restore_service(path)
        with restored:
            assert len(restored._queue) == len(pending)
            assert _verdict_stream([restored.end_tick()]) == reference

    def test_raw_measurement_stream_resumes_with_bank(self, tmp_path):
        # The in-service detector bank's window state travels, so the
        # resumed run flags exactly what the uninterrupted one would.
        def build():
            generator = LoadGenerator(PROFILE)
            service = OnlineCharacterizationService(
                generator.initial_positions(),
                ServiceConfig(r=0.05, tau=2),
                detector=DetectorSpec("ewma", {}),
                detection="bank",
            )
            return service, generator

        service, generator = build()
        with service:
            full = _verdict_stream(
                drive_load_measurements(service, generator, 8).ticks
            )
        service, generator = build()
        with service:
            head = _verdict_stream(
                drive_load_measurements(service, generator, 4).ticks
            )
            path = save_checkpoint(service, tmp_path / "ck.npz")
        restored = restore_service(path)
        with restored:
            assert restored.bank is not None
            generator2 = LoadGenerator(PROFILE)
            generator2.fast_forward(4)
            tail = _verdict_stream(
                drive_load_measurements(restored, generator2, 4).ticks
            )
        assert head + tail == full

    def test_restore_with_config_override_changes_backend(self, tmp_path):
        # Verdicts are backend-invariant, so a checkpoint written by a
        # serial service may resume on the pool (and vice versa).
        service, generator = _fresh_service()
        with service:
            drive_load(service, generator, 3)
            path = save_checkpoint(service, tmp_path / "ck.npz")
            service2, generator2 = _fresh_service()
            with service2:
                full = _verdict_stream(
                    drive_load(service2, generator2, 6).ticks
                )
        pool_config = ServiceConfig(
            r=0.05, tau=2, backend="process", workers=2, dispatch_deadline=5.0
        )
        restored = restore_service(path, config=pool_config)
        with restored:
            generator3 = LoadGenerator(PROFILE)
            generator3.fast_forward(3)
            tail = _verdict_stream(drive_load(restored, generator3, 3).ticks)
        assert tail == full[3:]

    def test_rejected_tally_travels(self, tmp_path):
        service, _ = _fresh_service()
        with service:
            service._reject("nan", 3)
            path = save_checkpoint(service, tmp_path / "ck.npz")
        restored = restore_service(path)
        with restored:
            assert restored.rejected == {"nan": 3}


class TestFormat:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_version_mismatch_raises(self, tmp_path):
        service, _ = _fresh_service()
        with service:
            path = save_checkpoint(service, tmp_path / "ck.npz")
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
        meta = json.loads(arrays["meta_json"].tobytes().decode())
        meta["version"] = 999
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="format version 999"):
            load_checkpoint(path)

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        service, _ = _fresh_service()
        with service:
            save_checkpoint(service, tmp_path / "ck.npz")
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["ck.npz"]


class TestWriterAndRetention:
    def test_writer_cadence_and_pruning(self, tmp_path):
        service, generator = _fresh_service()
        with service:
            writer = CheckpointWriter(
                service, tmp_path, every=2, keep=2
            )
            service.add_sink(writer)
            drive_load(service, generator, 9)
        # Ticks 2,4,6,8 were written; retention kept the newest 2.
        assert len(writer.written) == 4
        kept = [p.name for p in list_checkpoints(tmp_path)]
        assert kept == ["checkpoint-00000006.npz", "checkpoint-00000008.npz"]
        assert latest_checkpoint(tmp_path) == checkpoint_path(tmp_path, 8)

    def test_writer_validates_knobs(self, tmp_path):
        service, _ = _fresh_service()
        with service:
            with pytest.raises(ConfigurationError):
                CheckpointWriter(service, tmp_path, every=0)
            with pytest.raises(ConfigurationError):
                CheckpointWriter(service, tmp_path, keep=0)
        with pytest.raises(ConfigurationError):
            prune_checkpoints(tmp_path, keep=0)

    def test_latest_checkpoint_on_missing_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path / "never-made") is None
        assert list_checkpoints(tmp_path / "never-made") == []
