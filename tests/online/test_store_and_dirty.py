"""DeviceStateStore sharding/rolling semantics and dirty-region tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.online import DeviceStateStore, DirtyRegionTracker
from repro.online.store import stable_cell_hash


def make_store(n=20, d=2, seed=0, shards=4, cell=0.06):
    pts = np.random.default_rng(seed).random((n, d))
    return DeviceStateStore(pts, cell=cell, shards=shards), pts


class TestStoreBasics:
    def test_initial_snapshots_equal(self):
        store, pts = make_store()
        prev, cur = store.snapshot_arrays()
        assert np.array_equal(prev, pts)
        assert np.array_equal(cur, pts)
        assert prev is not cur

    def test_rejects_empty_population(self):
        with pytest.raises(DimensionMismatchError):
            DeviceStateStore(np.zeros((0, 2)), cell=0.1)

    def test_rejects_bad_shards(self):
        with pytest.raises(ConfigurationError):
            DeviceStateStore(np.zeros((3, 2)), cell=0.1, shards=0)

    def test_rejects_out_of_cube_positions(self):
        with pytest.raises(ConfigurationError):
            DeviceStateStore(np.full((3, 2), 1.5), cell=0.1)

    def test_unknown_device_rejected(self):
        store, _ = make_store()
        with pytest.raises(UnknownDeviceError):
            store.apply(99, [0.5, 0.5], False)


class TestSharding:
    def test_every_device_has_a_shard(self):
        store, _ = make_store(n=50, shards=5)
        assert sum(store.shard_sizes()) == 50
        for device in range(50):
            assert device in store.shard_members(store.shard_of(device))

    def test_same_cell_same_shard(self):
        store, _ = make_store(n=50, shards=5)
        for device in range(50):
            key = store.index.key_of(device)
            peers = store.index.devices_in_cell(key)
            shards = {store.shard_of(int(p)) for p in peers}
            assert len(shards) == 1

    def test_cross_cell_move_can_reassign_shard(self):
        store, _ = make_store(n=10, shards=7, cell=0.05)
        # Drive one device through many cells; its shard must always
        # match its cell's hash bucket.
        rng = np.random.default_rng(3)
        for _ in range(30):
            pos = rng.random(2)
            store.apply(0, pos, False)
            key = np.asarray(store.index.key_of(0), dtype=np.int64)
            expect = int(stable_cell_hash(key)[0] % np.uint64(store.n_shards))
            assert store.shard_of(0) == expect

    def test_legacy_hash_mode_matches_tuple_hash(self):
        pts = np.random.default_rng(5).random((10, 2))
        store = DeviceStateStore(
            pts, cell=0.05, shards=7, shard_hash="legacy"
        )
        rng = np.random.default_rng(3)
        for _ in range(10):
            store.apply(0, rng.random(2), False)
            key = store.index.key_of(0)
            assert store.shard_of(0) == hash(key) % store.n_shards

    def test_bad_shard_lookup_rejected(self):
        store, _ = make_store(shards=3)
        with pytest.raises(ConfigurationError):
            store.shard_members(3)


class TestApplyAndRoll:
    def test_apply_reports_motion_and_flag_change(self):
        store, pts = make_store()
        applied = store.apply(4, np.clip(pts[4] + 0.2, 0, 1), True)
        assert applied.moved and applied.flag_changed and applied.flagged
        # Re-applying the same state changes nothing.
        applied2 = store.apply(4, store.position(4), True)
        assert not applied2.moved and not applied2.flag_changed

    def test_flags_track_last_write(self):
        store, _ = make_store()
        store.apply(2, store.position(2), True)
        store.apply(7, store.position(7), True)
        store.apply(2, store.position(2), False)
        assert store.flagged_devices() == (7,)
        assert store.is_flagged(7) and not store.is_flagged(2)

    def test_advance_tick_rolls_current_into_previous(self):
        store, pts = make_store()
        new_pos = np.clip(pts[0] + 0.1, 0, 1)
        store.apply(0, new_pos, False)
        prev, cur = store.snapshot_arrays()
        assert np.array_equal(prev[0], pts[0])
        assert np.array_equal(cur[0], new_pos)
        store.advance_tick()
        prev, cur = store.snapshot_arrays()
        assert np.array_equal(prev[0], new_pos)

    def test_index_follows_current_positions(self):
        store, _ = make_store(cell=0.05)
        store.apply(1, [0.99, 0.99], False)
        assert np.allclose(store.index.position(1), [0.99, 0.99])


class TestDirtyRegionTracker:
    def make(self, r=0.03):
        cell = 2.0 * r
        return (
            DirtyRegionTracker(cell=cell, influence_radius=4.0 * r),
            cell,
        )

    def test_ring_count_covers_influence(self):
        tracker, cell = self.make()
        # rings * cell must strictly exceed the 4r influence radius.
        assert tracker.rings * cell > 4 * 0.03

    def test_unflagged_drift_is_invisible(self):
        tracker, _ = self.make()
        store, pts = make_store(cell=0.06)
        applied = store.apply(0, np.clip(pts[0] + 0.01, 0, 1), False)
        assert tracker.mark(applied, was_relevant=False) is False
        dirty, affected = tracker.finish_tick(store.index)
        assert dirty == () and affected == set()

    def test_flagged_move_dirties_both_cells(self):
        tracker, _ = self.make()
        store, _ = make_store(cell=0.06)
        applied = store.apply(0, [0.9, 0.9], True)
        assert tracker.mark(applied, was_relevant=False) is True
        dirty, affected = tracker.finish_tick(store.index)
        assert applied.old_cell in dirty and applied.new_cell in dirty
        assert 0 in affected

    def test_flag_toggle_without_motion_is_relevant(self):
        tracker, _ = self.make()
        store, _ = make_store(cell=0.06)
        applied = store.apply(3, store.position(3), True)
        assert tracker.mark(applied, was_relevant=False) is True

    def test_move_carries_into_next_tick(self):
        tracker, _ = self.make()
        store, _ = make_store(cell=0.06)
        applied = store.apply(0, [0.9, 0.9], True)
        tracker.mark(applied, was_relevant=False)
        dirty_now, _ = tracker.finish_tick(store.index)
        # No new marks: the carry from the move must still dirty the
        # trajectory's cells one tick later (prev endpoint shifted).
        dirty_next, affected = tracker.finish_tick(store.index)
        assert set(dirty_next) == {applied.old_cell, applied.new_cell}
        assert 0 in affected
        # ... and be fully consumed after that.
        dirty_after, _ = tracker.finish_tick(store.index)
        assert dirty_after == ()

    def test_flag_only_change_does_not_carry(self):
        tracker, _ = self.make()
        store, _ = make_store(cell=0.06)
        applied = store.apply(3, store.position(3), True)
        tracker.mark(applied, was_relevant=False)
        tracker.finish_tick(store.index)
        dirty_next, _ = tracker.finish_tick(store.index)
        assert dirty_next == ()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            DirtyRegionTracker(cell=0.0, influence_radius=0.1)
        with pytest.raises(ConfigurationError):
            DirtyRegionTracker(cell=0.1, influence_radius=-1.0)
