"""Online service over the persistent worker pool.

Acceptance contract of the pool PR: on randomized online streams with
``reuse_motions`` on, the pooled backend is verdict-identical (type /
rule / witness) to the serial backend, tick by tick — and the per-run
reuse decision means small ticks that degrade to the serial path still
reuse motion families through the engine's shared cache (regression for
the per-config-name bug that disabled reuse whenever the backend was
*named* ``process``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CharacterizationEngine, EngineConfig
from repro.online import OnlineCharacterizationService, QosUpdate, ServiceConfig


def _drive_stream(service, rng, positions, flags, ticks, *, churn=0.05):
    """Random walk with flag toggles; returns the per-tick OnlineTicks."""
    n, d = positions.shape
    out = []
    for _ in range(ticks):
        k = max(1, int(round(churn * n)))
        movers = rng.choice(n, size=k, replace=False)
        for j in movers:
            j = int(j)
            sigma = 0.1 if rng.random() < 0.3 else 0.01
            positions[j] = np.clip(positions[j] + rng.normal(0, sigma, d), 0, 1)
            flags[j] = rng.random() < 0.5
            service.ingest(QosUpdate(j, tuple(positions[j]), bool(flags[j])))
        out.append(service.end_tick())
    return out


def _make_service(base, *, backend, min_process_devices=1, workers=2):
    engine = CharacterizationEngine(
        EngineConfig(
            backend=backend,
            workers=workers,
            min_process_devices=min_process_devices,
        )
    )
    service = OnlineCharacterizationService(
        base.copy(),
        ServiceConfig(r=0.05, tau=2, reuse_motions=True),
        engine=engine,
    )
    return service, engine


class TestPoolServiceEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_streams_pool_matches_serial(self, seed):
        rng_base = np.random.default_rng(seed)
        n, d = 150, 2
        base = rng_base.random((n, d))

        def run(backend):
            service, engine = _make_service(base, backend=backend)
            with engine:
                rng = np.random.default_rng(100 + seed)
                ticks = _drive_stream(
                    service, rng, base.copy(), np.zeros(n, dtype=bool), 8
                )
                if backend == "process":
                    # The comparison is only meaningful if the stream
                    # actually exercised the worker pool.
                    assert engine.backend.workers_alive > 0
                return ticks

        serial_ticks = run("serial")
        pool_ticks = run("process")
        assert len(serial_ticks) == len(pool_ticks)
        for ts, tp in zip(serial_ticks, pool_ticks):
            assert ts.flagged == tp.flagged
            assert ts.verdicts.keys() == tp.verdicts.keys()
            for j in ts.verdicts:
                a, b = ts.verdicts[j], tp.verdicts[j]
                assert a.anomaly_type == b.anomaly_type, (ts.tick, j)
                assert a.rule == b.rule, (ts.tick, j)
                assert a.witness == b.witness, (ts.tick, j)

    def test_pool_reuses_worker_families_across_ticks(self):
        rng = np.random.default_rng(3)
        n = 200
        base = rng.random((n, 2))

        def totals(reuse):
            engine = CharacterizationEngine(
                EngineConfig(backend="process", workers=2, min_process_devices=1)
            )
            service = OnlineCharacterizationService(
                base.copy(),
                ServiceConfig(r=0.05, tau=2, reuse_motions=reuse),
                engine=engine,
            )
            with engine:
                pos = base.copy()
                flagged = sorted(int(j) for j in rng.choice(n, 24, replace=False))
                for dev in flagged:
                    pos[dev] = np.clip(pos[dev] + 0.04, 0, 1)
                    service.ingest(QosUpdate(dev, tuple(pos[dev]), True))
                service.end_tick()
                service.end_tick()  # absorb the setup move carry
                move_rng = np.random.default_rng(7)
                for _ in range(6):
                    for dev in [int(x) for x in move_rng.choice(flagged, 3, replace=False)]:
                        pos[dev] = np.clip(
                            pos[dev] + move_rng.normal(0, 0.01, 2), 0, 1
                        )
                        service.ingest(QosUpdate(dev, tuple(pos[dev]), True))
                    service.end_tick()
                return service.stats

        with_reuse = totals(True)
        without = totals(False)
        assert with_reuse.families_reused > 0
        assert without.families_reused == 0
        assert with_reuse.families_recomputed < without.families_recomputed

    def test_small_ticks_under_process_backend_still_reuse(self):
        # Regression: reuse used to be disabled per *config name* — any
        # service with backend == "process" lost motion-family reuse even
        # on ticks that fell back to the serial path and did consult the
        # shared cache.  Batches stay below min_process_devices here, so
        # every tick runs the serial fallback; reuse must engage.
        rng = np.random.default_rng(4)
        n = 150
        base = rng.random((n, 2))
        service, engine = _make_service(
            base, backend="process", min_process_devices=1_000
        )
        with engine:
            pos = base.copy()
            flagged = sorted(int(j) for j in rng.choice(n, 20, replace=False))
            for dev in flagged:
                pos[dev] = np.clip(pos[dev] + 0.04, 0, 1)
                service.ingest(QosUpdate(dev, tuple(pos[dev]), True))
            service.end_tick()
            service.end_tick()
            for _ in range(4):
                # Two movers per tick: far below min_process_devices.
                for dev in [int(x) for x in rng.choice(flagged, 2, replace=False)]:
                    pos[dev] = np.clip(pos[dev] + rng.normal(0, 0.01, 2), 0, 1)
                    service.ingest(QosUpdate(dev, tuple(pos[dev]), True))
                service.end_tick()
            assert engine.backend.workers_alive == 0  # never left serial
            assert service.stats.families_reused > 0

    def test_service_owns_and_closes_its_engine(self):
        rng = np.random.default_rng(5)
        base = rng.random((40, 2))
        with OnlineCharacterizationService(
            base,
            ServiceConfig(
                r=0.05, tau=2, backend="process", workers=2
            ),
        ) as service:
            for dev in range(8):
                service.ingest(QosUpdate(dev, (0.5, 0.5), True))
            service.end_tick()
        assert service.engine.backend.workers_alive == 0

    def test_shared_engine_left_open_by_service_close(self):
        rng = np.random.default_rng(6)
        base = rng.random((40, 2))
        engine = CharacterizationEngine(
            EngineConfig(backend="process", workers=2, min_process_devices=1)
        )
        try:
            service = OnlineCharacterizationService(
                base, ServiceConfig(r=0.05, tau=2), engine=engine
            )
            for dev in range(8):
                service.ingest(QosUpdate(dev, (0.5, 0.5), True))
            service.end_tick()
            alive_before = engine.backend.workers_alive
            service.close()  # not the engine's owner: must not close it
            assert engine.backend.workers_alive == alive_before
        finally:
            engine.close()
