"""Sharded topology: the cross-shard verdict-identity contract.

A :class:`~repro.online.sharded.ShardedService` may partition the
population spatially, exchange halos, migrate movers and merge partial
verdict maps — but tick for tick its output must equal one big
:class:`~repro.online.service.OnlineCharacterizationService` fed the
same stream: same flagged tuple, same verdict types, rules and
witnesses.  The suites below check that contract on adversarial
streams (boundary-ring clusters, corner cells shared by four shards,
movers crossing shards mid-tick, churn with id recycling) plus the
:class:`~repro.online.sharded.ShardMap` tiling algebra and the
per-shard consistent-cut checkpoint round trip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    CheckpointError,
    ConfigurationError,
    DimensionMismatchError,
)
from repro.online import (
    OnlineCharacterizationService,
    QosUpdate,
    ServiceConfig,
    ShardMap,
    ShardedCheckpointWriter,
    ShardedService,
    latest_sharded_checkpoint,
    list_sharded_checkpoints,
    load_sharded_checkpoint,
    prune_sharded_checkpoints,
    restore_sharded_service,
    save_sharded_checkpoint,
    sharded_manifest_path,
)

CFG = ServiceConfig(r=0.05, tau=2)

#: Both places a shard pipeline can run; the identity contract is the same.
TOPOLOGIES = ("thread", "process")


def make_pair(positions, cfg=CFG, *, shards=4, parallel=False,
              workers="thread"):
    """One big service and its sharded twin over the same population."""
    single = OnlineCharacterizationService(positions.copy(), cfg)
    sharded = ShardedService(
        positions.copy(), cfg, topology_shards=shards, parallel=parallel,
        topology_workers=workers,
    )
    return single, sharded


def assert_same_tick(single_out, sharded_out):
    """Verdict identity: flagged set, types, rules and witnesses."""
    assert sharded_out.tick == single_out.tick
    assert sharded_out.flagged == single_out.flagged
    assert set(sharded_out.verdicts) == set(single_out.verdicts)
    for device, want in single_out.verdicts.items():
        got = sharded_out.verdicts[device]
        assert got.anomaly_type == want.anomaly_type, device
        assert got.rule == want.rule, device
        assert got.witness == want.witness, device


def drive_twins(single, sharded, stream):
    """Feed identical per-tick event lists to both; verify every tick."""
    for events in stream:
        for device, pos, flagged in events:
            update = QosUpdate(int(device), tuple(pos), bool(flagged))
            single.ingest(update)
            sharded.ingest(update)
        assert_same_tick(single.end_tick(), sharded.end_tick())


def random_stream(rng, positions, flags, ticks, *, flag_p, jump_p):
    """Random-walk event stream mutating the caller's mirrors in place."""
    n, d = positions.shape
    out = []
    for _ in range(ticks):
        events = []
        movers = rng.choice(n, size=max(1, n // 3), replace=False)
        for j in movers:
            j = int(j)
            sigma = 0.3 if rng.random() < jump_p else 0.01
            positions[j] = np.clip(
                positions[j] + rng.normal(0, sigma, d), 0, 1
            )
            flags[j] = rng.random() < flag_p
            events.append((j, positions[j].copy(), flags[j]))
        out.append(events)
    return out


class TestShardMap:
    def test_grid_factorization_is_near_square(self):
        for shards, want in [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)),
                             (6, (3, 2)), (8, (4, 2)), (9, (3, 3)),
                             (12, (4, 3)), (7, (7, 1))]:
            m = ShardMap(shards, cell=0.05, dim=2, halo_rings=4)
            assert m.grid == want
            assert int(np.prod(m.grid)) == shards

    def test_dim1_tiles_single_axis(self):
        m = ShardMap(4, cell=0.1, dim=1, halo_rings=2)
        assert m.grid == (4,)
        boxes = [m.box(s) for s in range(4)]
        cells = [c for ((lo, hi),) in boxes for c in range(lo, hi + 1)]
        assert cells == list(range(m.cells_per_axis))

    def test_boxes_partition_the_cell_grid(self):
        m = ShardMap(6, cell=0.07, dim=2, halo_rings=4)
        K = m.cells_per_axis
        grid_x, grid_y = np.meshgrid(np.arange(K), np.arange(K))
        keys = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)
        owner = m.shard_of_keys(keys)
        # Every cell has exactly one owner, all shards are non-empty,
        # and ownership agrees with the box intervals.
        assert owner.min() >= 0 and owner.max() < 6
        assert len(np.unique(owner)) == 6
        for s in range(6):
            box = m.box(s)
            inside = np.ones(len(keys), dtype=bool)
            for axis, (lo, hi) in enumerate(box):
                inside &= (keys[:, axis] >= lo) & (keys[:, axis] <= hi)
            assert np.array_equal(inside, owner == s)

    def test_out_of_range_keys_clip_to_edge_shards(self):
        m = ShardMap(4, cell=0.1, dim=2, halo_rings=2)
        keys = np.array([[-3, -3], [99, 99]], dtype=np.int64)
        owner = m.shard_of_keys(keys)
        assert owner[0] == 0
        assert owner[1] == m.n_shards - 1

    def test_box_distance_zero_inside_positive_outside(self):
        m = ShardMap(4, cell=0.1, dim=2, halo_rings=2)
        (lo0, hi0), (lo1, hi1) = m.box(0)
        inside = np.array([[lo0, lo1], [hi0, hi1]], dtype=np.int64)
        assert np.array_equal(m.box_distance(inside, 0), [0, 0])
        outside = np.array(
            [[hi0 + 1, lo1], [hi0 + 3, hi1 + 2]], dtype=np.int64
        )
        assert np.array_equal(m.box_distance(outside, 0), [1, 3])

    def test_boundary_mask_matches_slack_definition(self):
        m = ShardMap(4, cell=0.05, dim=2, halo_rings=3)
        K = m.cells_per_axis
        grid_x, grid_y = np.meshgrid(np.arange(K), np.arange(K))
        keys = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)
        for s in range(4):
            own = m.box_distance(keys, s) == 0
            mask = m.boundary_mask(keys[own], s)
            slack = np.full(int(own.sum()), np.iinfo(np.int64).max)
            for axis, (lo, hi) in enumerate(m.box(s)):
                col = keys[own][:, axis]
                slack = np.minimum(slack, np.minimum(col - lo, hi - col))
            assert np.array_equal(mask, slack < m.halo_rings)

    def test_too_many_shards_for_coarse_cell_raises(self):
        with pytest.raises(ConfigurationError):
            ShardMap(64, cell=0.5, dim=2, halo_rings=1)

    @pytest.mark.parametrize("bad", [{"shards": 0}, {"dim": 0},
                                     {"halo_rings": 0}])
    def test_invalid_parameters_raise(self, bad):
        kwargs = dict(shards=4, cell=0.1, dim=2, halo_rings=2)
        kwargs.update(bad)
        shards = kwargs.pop("shards")
        with pytest.raises(ConfigurationError):
            ShardMap(shards, **kwargs)


class TestShardedIdentity:
    @pytest.mark.parametrize("workers", TOPOLOGIES)
    def test_random_walk_identity_serial(self, workers):
        rng = np.random.default_rng(11)
        positions = rng.random((60, 2))
        single, sharded = make_pair(positions, workers=workers)
        flags = np.zeros(60, dtype=bool)
        stream = random_stream(
            rng, positions, flags, 10, flag_p=0.5, jump_p=0.15
        )
        try:
            drive_twins(single, sharded, stream)
        finally:
            sharded.close()

    def test_random_walk_identity_parallel_executor(self):
        rng = np.random.default_rng(23)
        positions = rng.random((80, 2))
        single, sharded = make_pair(positions, shards=4, parallel=True)
        flags = np.zeros(80, dtype=bool)
        stream = random_stream(
            rng, positions, flags, 8, flag_p=0.4, jump_p=0.2
        )
        try:
            drive_twins(single, sharded, stream)
        finally:
            sharded.close()

    @pytest.mark.parametrize("workers", TOPOLOGIES)
    def test_shard_crossing_teleports_identity(self, workers):
        """Movers that jump across shard boxes every tick still match."""
        rng = np.random.default_rng(5)
        positions = rng.random((50, 2))
        single, sharded = make_pair(positions, workers=workers)
        flags = np.zeros(50, dtype=bool)
        try:
            for _ in range(8):
                for j in rng.choice(50, size=20, replace=False):
                    j = int(j)
                    positions[j] = rng.random(2)  # anywhere in the cube
                    flags[j] = rng.random() < 0.5
                    update = QosUpdate(
                        j, tuple(positions[j]), bool(flags[j])
                    )
                    single.ingest(update)
                    sharded.ingest(update)
                assert_same_tick(single.end_tick(), sharded.end_tick())
        finally:
            sharded.close()

    @pytest.mark.parametrize("workers", TOPOLOGIES)
    def test_churn_identity(self, workers):
        """Join/leave churn mixed into the stream still matches.

        Freed ids are recycled LIFO: the single service's transition is
        row-indexed, so a flagged id must stay below the row count, and
        the store hands freed rows back LIFO — the harness mirrors that
        order so recycled ids land on recycled rows.  The sharded
        service has no such constraint (its ids are global keys), but
        the twin drive needs a stream both sides accept."""
        rng = np.random.default_rng(7)
        n = 48
        positions = rng.random((n, 2))
        single, sharded = make_pair(positions, workers=workers)
        flags = {j: False for j in range(n)}
        pos = {j: positions[j].copy() for j in range(n)}
        free_ids: list = []
        try:
            for _ in range(10):
                alive = sorted(pos)
                gone = int(rng.choice(alive))
                single.store.leave(gone)
                sharded.leave(gone)
                del pos[gone], flags[gone]
                free_ids.append(gone)
                if rng.random() < 0.8:
                    j = free_ids.pop()
                    p = rng.random(2)
                    f = bool(rng.random() < 0.5)
                    single.store.join(j, p, f)
                    sharded.join(j, tuple(p), f)
                    pos[j] = p
                    flags[j] = f
                for j in rng.choice(sorted(pos), size=12, replace=False):
                    j = int(j)
                    pos[j] = np.clip(
                        pos[j] + rng.normal(0, 0.03, 2), 0, 1
                    )
                    flags[j] = rng.random() < 0.5
                    update = QosUpdate(j, tuple(pos[j]), bool(flags[j]))
                    single.ingest(update)
                    sharded.ingest(update)
                assert_same_tick(single.end_tick(), sharded.end_tick())
                assert sharded.n == single.store.n
                # Owner map stays consistent with the stores.
                for j in pos:
                    s = sharded.shard_of(j)
                    if workers == "thread":
                        assert sharded.workers[s].store.row_of(j) >= 0
                assert sorted(sharded.flagged_devices()) == sorted(
                    single.store.flagged_devices()
                )
        finally:
            sharded.close()

    @pytest.mark.parametrize("workers", TOPOLOGIES)
    def test_feed_snapshot_identity(self, workers):
        rng = np.random.default_rng(13)
        positions = rng.random((40, 2))
        single, sharded = make_pair(positions, workers=workers)
        try:
            for _ in range(6):
                positions = np.clip(
                    positions + rng.normal(0, 0.02, positions.shape), 0, 1
                )
                flags = rng.random(40) < 0.4
                assert_same_tick(
                    single.feed_snapshot(positions, flags),
                    sharded.feed_snapshot(positions, flags),
                )
        finally:
            sharded.close()

    def test_calm_stream_reuses_cached_verdicts(self):
        """On a calm stream the sharded service reuses verdicts too —
        and the recompute/reuse split matches the single service (both
        key their caches by global device id)."""
        rng = np.random.default_rng(3)
        positions = rng.random((60, 2))
        single, sharded = make_pair(positions)
        flags = np.zeros(60, dtype=bool)
        flags[rng.choice(60, size=25, replace=False)] = True
        reused_total = 0
        try:
            out_s = single.feed_snapshot(positions, flags)
            out_h = sharded.feed_snapshot(positions, flags)
            assert_same_tick(out_s, out_h)
            for _ in range(5):
                movers = rng.choice(60, size=4, replace=False)
                positions[movers] = np.clip(
                    positions[movers] + rng.normal(0, 0.01, (4, 2)), 0, 1
                )
                out_s = single.feed_snapshot(positions, flags)
                out_h = sharded.feed_snapshot(positions, flags)
                assert_same_tick(out_s, out_h)
                assert sorted(out_h.recomputed) == sorted(out_s.recomputed)
                assert sorted(out_h.reused) == sorted(out_s.reused)
                reused_total += len(out_h.reused)
            assert reused_total > 0
        finally:
            sharded.close()


# Cells per axis at cell = r * 4/3: internal boundaries sit at
# multiples of 1/grid-axis in cell space; the cluster strategies below
# aim device clouds at those seams and the centre corner.
@st.composite
def boundary_scenario(draw):
    """A population hugging shard seams plus cross-seam move vectors."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n_clusters = draw(st.integers(min_value=2, max_value=4))
    ticks = draw(st.integers(min_value=3, max_value=5))
    return seed, n_clusters, ticks


class TestHaloCorrectness:
    """Hypothesis sweep of the halo-exchange soundness argument.

    Devices are planted in tight clusters straddling the internal shard
    seams of a 2x2 tiling — including the centre corner cell region
    shared by all four shards — and then random-walked across the seams
    with occasional teleports.  If the halo band were one ring too thin
    or the boundary filter dropped a needed row, a verdict near a seam
    would diverge from the single-service reference.
    """

    @settings(max_examples=12, deadline=None)
    @given(boundary_scenario())
    def test_seam_clusters_and_crossers_match_single_service(self, scn):
        seed, n_clusters, ticks = scn
        rng = np.random.default_rng(seed)
        # Seams of the 2x2 tiling over [0,1]^2: x=0.5, y=0.5; the
        # centre (0.5, 0.5) is the corner shared by all four shards.
        anchors = [(0.5, 0.5)]  # corner cell cluster, always present
        for _ in range(n_clusters - 1):
            t = rng.random()
            anchors.append(
                (0.5, t) if rng.random() < 0.5 else (t, 0.5)
            )
        chunks = []
        for ax, ay in anchors:
            pts = np.array([ax, ay]) + rng.normal(0, 0.06, (12, 2))
            chunks.append(np.clip(pts, 0, 1))
        positions = np.concatenate(chunks)
        n = len(positions)
        single, sharded = make_pair(positions.copy(), shards=4)
        flags = np.zeros(n, dtype=bool)
        try:
            for _ in range(ticks):
                movers = rng.choice(n, size=n // 2, replace=False)
                for j in movers:
                    j = int(j)
                    if rng.random() < 0.2:
                        # Teleport across the seam: reflect about 0.5
                        # on one axis so the device changes shards.
                        axis = int(rng.random() < 0.5)
                        positions[j, axis] = np.clip(
                            1.0 - positions[j, axis]
                            + rng.normal(0, 0.02),
                            0,
                            1,
                        )
                    else:
                        positions[j] = np.clip(
                            positions[j] + rng.normal(0, 0.02, 2), 0, 1
                        )
                    flags[j] = rng.random() < 0.6
                    update = QosUpdate(
                        j, tuple(positions[j]), bool(flags[j])
                    )
                    single.ingest(update)
                    sharded.ingest(update)
                assert_same_tick(single.end_tick(), sharded.end_tick())
        finally:
            sharded.close()


class TestShardedServiceSurface:
    def test_partition_and_sizes(self):
        rng = np.random.default_rng(1)
        positions = rng.random((30, 2))
        with ShardedService(positions, CFG, topology_shards=4,
                            parallel=False) as svc:
            assert svc.n == 30
            assert svc.dim == 2
            assert svc.n_shards == 4
            assert sum(svc.shard_sizes()) == 30
            for j in range(30):
                s = svc.shard_of(j)
                assert 0 <= s < 4
                assert svc.workers[s].store.row_of(j) >= 0

    def test_empty_shards_are_harmless(self):
        # All devices in one corner: three of four shards stay empty.
        positions = np.full((10, 2), 0.05) + np.arange(10)[:, None] * 1e-3
        with ShardedService(positions, CFG, topology_shards=4,
                            parallel=False) as svc:
            sizes = svc.shard_sizes()
            assert sum(sizes) == 10
            assert sizes.count(0) == 3
            flags = np.ones(10, dtype=bool)
            out = svc.feed_snapshot(positions, flags)
            assert out.flagged == tuple(range(10))
            assert set(out.verdicts) == set(range(10))

    def test_migration_keeps_owner_map_consistent(self):
        rng = np.random.default_rng(2)
        positions = rng.random((20, 2))
        with ShardedService(positions, CFG, topology_shards=4,
                            parallel=False) as svc:
            before = [svc.shard_of(j) for j in range(20)]
            # Teleport everyone; most change shards.
            moved = 1.0 - positions
            svc.feed_snapshot(moved, np.zeros(20, dtype=bool))
            changed = 0
            for j in range(20):
                s = svc.shard_of(j)
                assert svc.workers[s].store.row_of(j) >= 0
                changed += s != before[j]
            assert changed > 0
            assert sum(svc.shard_sizes()) == 20

    def test_stage_seconds_covers_shard_stages(self):
        rng = np.random.default_rng(4)
        positions = rng.random((30, 2))
        with ShardedService(positions, CFG, topology_shards=2,
                            parallel=False) as svc:
            flags = np.ones(30, dtype=bool)
            out = svc.feed_snapshot(positions, flags)
            for stage in ("index-update", "shard-migrate", "dirty-region",
                          "halo-exchange", "transition-build", "verdict",
                          "sinks"):
                assert stage in out.stage_seconds, stage

    def test_shard_metrics_are_labelled_per_shard(self):
        rng = np.random.default_rng(6)
        positions = rng.random((24, 2))
        with ShardedService(positions, CFG, topology_shards=4,
                            parallel=False) as svc:
            svc.feed_snapshot(positions, np.ones(24, dtype=bool))
            from repro.obs.export import render_prometheus

            text = render_prometheus(svc.tracer.registry)
            assert "repro_shard_devices" in text
            assert 'shard="0"' in text and 'shard="3"' in text
            assert "repro_shard_stage_seconds" in text

    def test_snapshot_frame_validation(self):
        rng = np.random.default_rng(8)
        positions = rng.random((10, 2))
        with ShardedService(positions, CFG, topology_shards=2,
                            parallel=False) as svc:
            with pytest.raises(DimensionMismatchError):
                svc.feed_snapshot(
                    rng.random((10, 3)), np.zeros(10, dtype=bool)
                )
            with pytest.raises(DimensionMismatchError):
                svc.feed_snapshot(
                    rng.random((10, 2)), np.zeros(9, dtype=bool)
                )

    def test_duplicate_join_and_unknown_leave_raise(self):
        positions = np.random.default_rng(9).random((6, 2))
        with ShardedService(positions, CFG, topology_shards=2,
                            parallel=False) as svc:
            with pytest.raises(ConfigurationError):
                svc.join(3, (0.5, 0.5))
            with pytest.raises(ConfigurationError):
                svc.shard_of(99)


class TestShardedRecovery:
    def _run_stream(self, svc, rng, positions, flags, ticks):
        outs = []
        for _ in range(ticks):
            movers = rng.choice(len(positions), size=10, replace=False)
            positions[movers] = np.clip(
                positions[movers]
                + rng.normal(0, 0.02, (len(movers), 2)),
                0,
                1,
            )
            flags[movers] = rng.random(len(movers)) < 0.5
            outs.append(svc.feed_snapshot(positions, flags))
        return outs

    def test_kill_and_restore_resumes_verdict_identically(self, tmp_path):
        rng = np.random.default_rng(21)
        base = rng.random((40, 2))
        flags0 = np.zeros(40, dtype=bool)

        # Reference: one uninterrupted sharded run, recording a
        # replayable stream (seeded, so both runs see the same frames).
        def stream(seed, positions, flags, svc, ticks):
            r = np.random.default_rng(seed)
            return self._run_stream(svc, r, positions, flags, ticks)

        ref_pos, ref_flags = base.copy(), flags0.copy()
        with ShardedService(ref_pos.copy(), CFG, topology_shards=4,
                            parallel=False) as ref:
            ref_out = stream(99, ref_pos, ref_flags, ref, 8)

        # Interrupted run: checkpoint every 2 ticks, "crash" after 5.
        pos, flags = base.copy(), flags0.copy()
        svc = ShardedService(pos.copy(), CFG, topology_shards=4,
                             parallel=False)
        writer = ShardedCheckpointWriter(svc, tmp_path, every=2, keep=3)
        svc.add_sink(writer)
        r = np.random.default_rng(99)
        first = self._run_stream(svc, r, pos, flags, 5)
        svc.close()
        for want, got in zip(ref_out[:5], first):
            assert_same_tick(want, got)

        manifest = latest_sharded_checkpoint(tmp_path)
        assert manifest is not None
        restored = restore_sharded_service(manifest, parallel=False)
        try:
            assert restored.current_tick == 4
            # Replay tick 5 (lost after the checkpoint), then continue.
            pos2, flags2 = base.copy(), flags0.copy()
            r2 = np.random.default_rng(99)
            replayed = []
            for tick in range(8):
                movers = r2.choice(40, size=10, replace=False)
                pos2[movers] = np.clip(
                    pos2[movers] + r2.normal(0, 0.02, (10, 2)), 0, 1
                )
                flags2[movers] = r2.random(10) < 0.5
                if tick >= 4:
                    replayed.append(
                        restored.feed_snapshot(pos2, flags2)
                    )
            for want, got in zip(ref_out[4:], replayed):
                assert_same_tick(want, got)
        finally:
            restored.close()

    def test_checkpoint_round_trip_preserves_state(self, tmp_path):
        rng = np.random.default_rng(31)
        positions = rng.random((24, 2))
        flags = np.zeros(24, dtype=bool)
        with ShardedService(positions.copy(), CFG, topology_shards=4,
                            parallel=False) as svc:
            self._run_stream(svc, rng, positions, flags, 3)
            path = svc.checkpoint(tmp_path)
            want_verdicts = svc.verdicts
            want_sizes = svc.shard_sizes()
        ckpt = load_sharded_checkpoint(path)
        assert ckpt.tick == 3
        assert ckpt.topology_shards == 4
        restored = restore_sharded_service(ckpt, parallel=False)
        try:
            assert restored.current_tick == 3
            assert restored.shard_sizes() == want_sizes
            assert set(restored.verdicts) == set(want_verdicts)
            for device, want in want_verdicts.items():
                got = restored.verdicts[device]
                assert got.anomaly_type == want.anomaly_type
                assert got.witness == want.witness
        finally:
            restored.close()

    def test_torn_cut_is_rejected(self, tmp_path):
        rng = np.random.default_rng(41)
        positions = rng.random((16, 2))
        with ShardedService(positions.copy(), CFG, topology_shards=2,
                            parallel=False) as svc:
            svc.feed_snapshot(positions, np.zeros(16, dtype=bool))
            path = svc.checkpoint(tmp_path)
        # A missing shard part means the cut is incomplete.
        parts = sorted(tmp_path.glob("shard-*/part-*.npz"))
        assert parts
        parts[0].unlink()
        with pytest.raises(CheckpointError):
            load_sharded_checkpoint(path)

    def test_list_latest_and_prune(self, tmp_path):
        rng = np.random.default_rng(51)
        positions = rng.random((12, 2))
        with ShardedService(positions.copy(), CFG, topology_shards=2,
                            parallel=False) as svc:
            flags = np.zeros(12, dtype=bool)
            for _ in range(4):
                svc.feed_snapshot(positions, flags)
                save_sharded_checkpoint(svc, tmp_path)
        manifests = list_sharded_checkpoints(tmp_path)
        assert len(manifests) == 4
        assert latest_sharded_checkpoint(tmp_path) == manifests[-1]
        assert (
            latest_sharded_checkpoint(tmp_path)
            == sharded_manifest_path(tmp_path, 4)
        )
        removed = prune_sharded_checkpoints(tmp_path, keep=2)
        assert removed == 2
        left = list_sharded_checkpoints(tmp_path)
        assert len(left) == 2
        # Pruning removes the shard parts too, not just manifests.
        ticks_left = {int(p.stem.split("-")[1]) for p in left}
        for part in tmp_path.glob("shard-*/part-*.npz"):
            assert int(part.stem.split("-")[1]) in ticks_left


class TestProcessTopology:
    """Contracts specific to per-shard processes over shm partitions."""

    def test_halo_seq_gate_rejects_stale_band(self):
        """A consumer must never read a band from the wrong tick: the
        in-process read raises on a sequence mismatch, and the
        cross-process gate times out into the same error instead of
        copying whatever the ring currently holds."""
        from repro.ipc import SegmentReader
        from repro.online import procshard
        from repro.online.sharded import StaleHaloError, _HaloChannel

        channel = _HaloChannel()
        try:
            ids = np.array([3, 7], dtype=np.int64)
            keys = np.array([[0, 0], [1, 1]], dtype=np.int64)
            band = np.array([[0.1, 0.2], [0.3, 0.4]])
            channel.publish(ids, keys, band, band + 0.01, seq=5)
            prev, cur = channel.read(expected_seq=5)
            assert np.allclose(prev, band)
            with pytest.raises(StaleHaloError):
                channel.read(expected_seq=6)

            meta = channel.meta(0)
            assert meta["seq"] == 5
            reader = SegmentReader()
            source = dict(meta, take=np.array([0, 1]), seq=6)
            old_timeout = procshard._HALO_GATE_TIMEOUT
            procshard._HALO_GATE_TIMEOUT = 0.05
            try:
                with pytest.raises(StaleHaloError):
                    procshard._read_halo_sources(reader, [source], 2)
                # The published sequence itself gates through cleanly.
                source["seq"] = 5
                got_ids, got_prev, got_cur = procshard._read_halo_sources(
                    reader, [source], 2
                )
                assert got_ids.tolist() == [3, 7]
                assert np.allclose(got_prev, band)
                assert np.allclose(got_cur, band + 0.01)
            finally:
                procshard._HALO_GATE_TIMEOUT = old_timeout
                reader.close()
        finally:
            channel.close()

    def test_halo_delay_stalls_barrier_never_corrupts(self):
        """Chaos-delaying one shard's halo publish slows the tick but the
        seq-gated barrier still hands every consumer the right band —
        verdicts stay identical to the fault-free single service."""
        from repro.robust.chaos import FaultPlan, inject

        rng = np.random.default_rng(17)
        positions = rng.random((48, 2))
        single, sharded = make_pair(positions, workers="process")
        flags = np.zeros(48, dtype=bool)
        stream = random_stream(
            rng, positions, flags, 4, flag_p=0.5, jump_p=0.1
        )
        plan = FaultPlan(halo_delay_at={2: 0}, delay_seconds=0.2)
        try:
            with inject(plan) as injector:
                drive_twins(single, sharded, stream)
            assert injector.injected.get("halo_delay") == 1
        finally:
            sharded.close()

    def test_kill_chaos_respawns_never_diverges(self):
        """Scheduled kills of shard children mid-verdict force respawns
        (and possibly degraded inline shards) — never wrong answers."""
        from repro.robust.chaos import FaultPlan, inject

        rng = np.random.default_rng(29)
        positions = rng.random((56, 2))
        cfg = ServiceConfig(
            r=0.05, tau=2, dispatch_deadline=5.0, dispatch_retries=2
        )
        single, sharded = make_pair(positions, cfg=cfg, workers="process")
        flags = np.zeros(56, dtype=bool)
        stream = random_stream(
            rng, positions, flags, 6, flag_p=0.5, jump_p=0.15
        )
        plan = FaultPlan(kill_at={2: 1}, kill_after_at={4: 3})
        try:
            with inject(plan) as injector:
                drive_twins(single, sharded, stream)
            assert injector.injected.get("kill") == 1
            assert injector.injected.get("kill_after") == 1
            # The pre-send kill guarantees at least one respawn; the
            # post-send kill races the child's reply and may be absorbed.
            assert sum(h.respawns for h in sharded.handles
                       if hasattr(h, "respawns")) >= 1
        finally:
            sharded.close()

    def test_min_shard_devices_collapses_and_warns(self):
        positions = np.random.default_rng(33).random((16, 2))
        with pytest.warns(RuntimeWarning, match="collaps"):
            svc = ShardedService(
                positions, CFG, topology_shards=4, parallel=False,
                min_shard_devices=8,
            )
        try:
            assert svc.n_shards == 2
            assert svc.n == 16
        finally:
            svc.close()
        # Large-enough fleets keep the requested shard count, silently.
        big = np.random.default_rng(34).random((64, 2))
        with ShardedService(big, CFG, topology_shards=4, parallel=False,
                            min_shard_devices=8) as svc:
            assert svc.n_shards == 4

    def test_process_checkpoint_restores_under_either_topology(
        self, tmp_path
    ):
        rng = np.random.default_rng(37)
        positions = rng.random((40, 2))
        flags = np.zeros(40, dtype=bool)
        svc = ShardedService(
            positions.copy(), CFG, topology_shards=4,
            topology_workers="process",
        )
        history = []
        pos = positions.copy()
        try:
            for _ in range(3):
                movers = rng.choice(40, size=10, replace=False)
                pos[movers] = np.clip(
                    pos[movers] + rng.normal(0, 0.02, (10, 2)), 0, 1
                )
                flags[movers] = rng.random(10) < 0.5
                history.append(svc.feed_snapshot(pos, flags))
            path = svc.checkpoint(tmp_path)
            want = svc.verdicts
            sizes = svc.shard_sizes()
        finally:
            svc.close()
        for workers in TOPOLOGIES:
            restored = restore_sharded_service(
                path, topology_workers=workers
            )
            try:
                assert restored.topology_workers == workers
                assert restored.current_tick == 3
                assert restored.shard_sizes() == sizes
                got = restored.verdicts
                assert set(got) == set(want)
                for device, v in want.items():
                    assert got[device].anomaly_type == v.anomaly_type
                    assert got[device].witness == v.witness
                # And the restored service keeps ticking identically.
                nxt = np.clip(pos + 0.005, 0, 1)
                out = restored.feed_snapshot(nxt, flags)
                assert out.tick == 4
            finally:
                restored.close()
