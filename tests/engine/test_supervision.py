"""Supervised pool: deadlines, retries, quarantine, health machine.

PR 8's fault-tolerance contract for :class:`WorkerPoolBackend`:

* a worker that misses the ``dispatch_deadline`` is killed and its slice
  retried against a respawn (bounded by ``dispatch_retries``) — the run
  still returns verdicts bit-identical to the serial path;
* a slice that keeps killing workers is quarantined onto the serial
  path (``poison_threshold``) instead of failing the run;
* worker *error replies* are never retried: they surface immediately as
  :class:`PoolError` carrying the worker traceback, which also survives
  teardown on ``last_worker_error``;
* run outcomes drive an explicit health machine
  ``healthy -> degraded -> serial-fallback`` with periodic recovery
  probes, exported as a gauge plus transition counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError, PoolError
from repro.core.transition import Snapshot, Transition
from repro.engine import EngineConfig, WorkerPoolBackend
from repro.obs.metrics import get_registry
from repro.robust.chaos import FaultPlan, inject


def _transition(seed=0, n=60, r=0.05, tau=2, drift=0.01):
    rng = np.random.default_rng(seed)
    prev = rng.random((n, 2))
    cur = np.clip(prev + rng.normal(0, drift, (n, 2)), 0, 1)
    return Transition(Snapshot(prev), Snapshot(cur), range(n), r, tau)


def _same_verdicts(got, expected):
    assert set(got) == set(expected)
    for device in expected:
        assert got[device].anomaly_type == expected[device].anomaly_type
        assert got[device].rule == expected[device].rule
        assert got[device].witness == expected[device].witness


def _config(**overrides):
    base = dict(
        backend="process",
        workers=2,
        min_process_devices=1,
        dispatch_deadline=2.0,
        retry_backoff=0.01,
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestConfigKnobs:
    @pytest.mark.parametrize(
        "field, bad",
        [
            ("dispatch_deadline", 0.0),
            ("dispatch_deadline", -1.0),
            ("dispatch_retries", -1),
            ("retry_backoff", -0.5),
            ("poison_threshold", 0),
            ("serial_fallback_after", 0),
            ("recovery_probe_every", 0),
            ("recovery_runs", 0),
        ],
    )
    def test_rejects_bad_values(self, field, bad):
        with pytest.raises(ConfigurationError):
            EngineConfig(**{field: bad})

    def test_supervision_knobs_do_not_restart_the_pool(self):
        # The knobs steer the parent only, so flipping them must not
        # invalidate the started pool (workers never see them).
        backend = WorkerPoolBackend()
        key_a = backend._config_key(2, _config(dispatch_retries=1))
        key_b = backend._config_key(2, _config(dispatch_retries=5))
        assert key_a == key_b


class TestDeadlineSupervision:
    def test_hung_worker_is_killed_and_retried(self):
        config = _config(dispatch_deadline=0.5)
        t = _transition(0)
        expected = Characterizer(t).characterize_all()
        backend = WorkerPoolBackend()
        try:
            plan = FaultPlan(drop_reply_at={1: 0})
            with inject(plan) as injector:
                run = backend.run(t, t.flagged_sorted, config)
            assert injector.injected.get("drop_reply") == 1
            _same_verdicts(run.verdicts, expected)
            # The fault degraded health; the retry kept the run whole.
            assert backend.health == "degraded"
            assert backend.poisoned_batches == 0
            assert backend.workers_alive == 2
            # A clean streak heals the pool.
            for _ in range(config.recovery_runs):
                backend.run(t, t.flagged_sorted, config)
            assert backend.health == "healthy"
        finally:
            backend.close()

    def test_no_deadline_means_unbounded_wait(self):
        # Without a deadline the pool blocks on the reply; a short hang
        # resolves by itself and costs no respawn.
        config = _config(dispatch_deadline=None)
        t = _transition(1)
        backend = WorkerPoolBackend()
        try:
            backend.run(t, t.flagged_sorted, config)
            pids = {w.process.pid for w in backend._state.workers}
            plan = FaultPlan(hang_at={2: 0}, hang_seconds=0.2)
            with inject(plan):
                run = backend.run(t, t.flagged_sorted, config)
            assert {w.process.pid for w in backend._state.workers} == pids
            _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
            assert backend.health == "healthy"
        finally:
            backend.close()

    def test_kill_after_dispatch_is_retried(self):
        # The worker dies after the task is sent: collect sees EOF and
        # must retry against a respawn.
        config = _config()
        t = _transition(2)
        backend = WorkerPoolBackend()
        try:
            with inject(FaultPlan(kill_after_at={1: 0})):
                run = backend.run(t, t.flagged_sorted, config)
            _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
            assert backend.health == "degraded"
        finally:
            backend.close()

    def test_retry_counter_is_exported(self):
        config = _config(dispatch_deadline=0.5)
        t = _transition(3)
        backend = WorkerPoolBackend()
        before = get_registry().counter(
            WorkerPoolBackend._COUNTER_RETRIES, ""
        ).value
        try:
            with inject(FaultPlan(drop_reply_at={1: 1})):
                backend.run(t, t.flagged_sorted, config)
        finally:
            backend.close()
        after = get_registry().counter(
            WorkerPoolBackend._COUNTER_RETRIES, ""
        ).value
        assert after == before + 1


class TestPoisonQuarantine:
    def test_exhausted_retries_quarantine_the_slice(self):
        # dispatch_retries=0: the first deadline miss quarantines the
        # slice onto the serial path instead of failing the run.
        config = _config(dispatch_deadline=0.5, dispatch_retries=0)
        t = _transition(4)
        expected = Characterizer(t).characterize_all()
        backend = WorkerPoolBackend()
        try:
            with inject(FaultPlan(drop_reply_at={1: 0})):
                run = backend.run(t, t.flagged_sorted, config)
            _same_verdicts(run.verdicts, expected)
            assert backend.poisoned_batches == 1
            # The quarantine respawned the worker: the pool stays whole
            # and serves the next run on the pool path.
            assert backend.workers_alive == 2
            run2 = backend.run(t, t.flagged_sorted, config)
            _same_verdicts(run2.verdicts, expected)
        finally:
            backend.close()

    def test_poison_threshold_counts_kills(self):
        # poison_threshold=1 quarantines on the first kill even though
        # retries remain.
        config = _config(poison_threshold=1, dispatch_retries=5)
        t = _transition(5)
        backend = WorkerPoolBackend()
        try:
            with inject(FaultPlan(kill_after_at={1: 0})):
                run = backend.run(t, t.flagged_sorted, config)
            assert backend.poisoned_batches == 1
            _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
        finally:
            backend.close()


class TestWorkerErrors:
    def test_error_reply_is_never_retried(self):
        # A deterministic in-worker exception must not burn retries or
        # kill workers: it surfaces immediately with the traceback.
        config = _config(dispatch_retries=5)
        t = _transition(6, n=20)
        backend = WorkerPoolBackend()
        try:
            with pytest.raises(PoolError) as info:
                backend.run(t, [10**6] + list(t.flagged_sorted), config)
            assert info.value.worker_traceback is not None
            assert "Traceback" in info.value.worker_traceback
            # The traceback survives the post-failure pool reset.
            assert backend.last_worker_error == info.value.worker_traceback
        finally:
            backend.close()
        assert backend.last_worker_error is not None

    def test_pool_error_is_a_runtime_error(self):
        # Compatibility: callers matching RuntimeError keep working.
        assert issubclass(PoolError, RuntimeError)


class TestHealthMachine:
    def test_fault_streak_reaches_serial_fallback_and_recovers(self):
        config = _config(
            dispatch_deadline=0.5,
            dispatch_retries=1,
            serial_fallback_after=2,
            recovery_probe_every=3,
            recovery_runs=1,
        )
        t = _transition(7)
        expected = Characterizer(t).characterize_all()
        backend = WorkerPoolBackend()
        try:
            # Two consecutive faulty pool runs: healthy -> degraded ->
            # serial-fallback.  (Seq only advances on pool-path runs.)
            with inject(FaultPlan(drop_reply_at={1: 0, 2: 0})):
                backend.run(t, t.flagged_sorted, config)
                assert backend.health == "degraded"
                backend.run(t, t.flagged_sorted, config)
            assert backend.health == "serial-fallback"
            # The next probe is 3 runs out: until then runs execute
            # serially (and verdict-identically), without fanout.
            assert not backend.plans_fanout(t.flagged_sorted, config)
            for _ in range(config.recovery_probe_every - 1):
                run = backend.run(t, t.flagged_sorted, config)
                _same_verdicts(run.verdicts, expected)
                assert backend.health == "serial-fallback"
            # Probe run: pool path, clean -> degraded; one more clean
            # run -> healthy.
            assert backend.plans_fanout(t.flagged_sorted, config)
            backend.run(t, t.flagged_sorted, config)
            assert backend.health == "degraded"
            backend.run(t, t.flagged_sorted, config)
            assert backend.health == "healthy"
        finally:
            backend.close()

    def test_faulty_probe_restarts_the_countdown(self):
        config = _config(
            dispatch_deadline=0.5,
            dispatch_retries=1,
            serial_fallback_after=1,
            recovery_probe_every=2,
            recovery_runs=2,
        )
        t = _transition(8)
        backend = WorkerPoolBackend()
        try:
            # Run 1 (seq 1) faulty: straight to serial-fallback.
            # Run 3 is the probe (seq 2) and faults too: stay fallen.
            with inject(FaultPlan(drop_reply_at={1: 0, 2: 0})):
                backend.run(t, t.flagged_sorted, config)
                assert backend.health == "serial-fallback"
                backend.run(t, t.flagged_sorted, config)  # serial
                backend.run(t, t.flagged_sorted, config)  # faulty probe
            assert backend.health == "serial-fallback"
        finally:
            backend.close()

    def test_health_gauge_and_transitions_are_exported(self):
        config = _config(dispatch_deadline=0.5)
        t = _transition(9)
        backend = WorkerPoolBackend()
        try:
            with inject(FaultPlan(drop_reply_at={1: 0})):
                backend.run(t, t.flagged_sorted, config)
        finally:
            backend.close()
        registry = get_registry()
        gauge = registry.gauge(WorkerPoolBackend._GAUGE_HEALTH, "")
        assert gauge.value == 1.0  # degraded
        transitions = registry.counter(
            WorkerPoolBackend._COUNTER_TRANSITIONS,
            "",
            labelnames=("from", "to"),
        )
        child = transitions.labels(**{"from": "healthy", "to": "degraded"})
        assert child.value >= 1


class TestShutdownRaciness:
    def test_double_close_is_a_clean_noop(self):
        config = _config()
        t = _transition(10)
        backend = WorkerPoolBackend()
        backend.run(t, t.flagged_sorted, config)
        backend.close()
        backend.close()
        assert backend.workers_alive == 0
        # And the pool restarts lazily afterwards.
        run = backend.run(t, t.flagged_sorted, config)
        _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
        backend.close()

    def test_close_after_failed_run_keeps_last_worker_error(self):
        config = _config()
        t = _transition(11, n=20)
        backend = WorkerPoolBackend()
        with pytest.raises(PoolError):
            backend.run(t, [10**6] + list(t.flagged_sorted), config)
        backend.close()
        backend.close()
        assert backend.last_worker_error is not None
        assert "Traceback" in backend.last_worker_error
