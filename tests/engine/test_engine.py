"""Engine layer: config validation, backend equivalence, cache sharing.

The load-bearing property is *verdict identity*: every backend, with and
without batch precomputation, must reproduce the per-device seed path
(`Characterizer(t).characterize_all()`) exactly on seeded simulations.
"""

from __future__ import annotations

import pytest

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError
from repro.engine import (
    BACKENDS,
    CharacterizationEngine,
    EngineConfig,
    SerialBackend,
    SpawnProcessBackend,
    WorkerPoolBackend,
    make_backend,
)
from repro.simulation import SimulationConfig, Simulator


def _seed_verdicts(transition):
    return Characterizer(transition).characterize_all()


def _assert_same_verdicts(got, expected):
    assert set(got) == set(expected)
    for device in expected:
        assert got[device].anomaly_type == expected[device].anomaly_type, device
        assert got[device].rule == expected[device].rule, device
        assert got[device].witness == expected[device].witness, device


@pytest.fixture(scope="module")
def simulated_steps():
    config = SimulationConfig(n=400, errors_per_step=12, seed=5)
    return Simulator(config).run(3)


class TestEngineConfig:
    def test_defaults_are_serial(self):
        config = EngineConfig()
        assert config.backend == "serial"
        assert config.budget_fallback is False

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(backend="threads")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"chunk_size": 0},
            {"min_process_devices": 0},
        ],
    )
    def test_bad_counts_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EngineConfig(**kwargs)

    def test_characterizer_kwargs_roundtrip(self):
        config = EngineConfig(collection_budget=123, budget_fallback=True)
        kwargs = config.characterizer_kwargs()
        assert kwargs["collection_budget"] == 123
        assert kwargs["budget_fallback"] is True

    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process"), WorkerPoolBackend)
        assert isinstance(make_backend("process-spawn"), SpawnProcessBackend)
        assert set(BACKENDS) == {"serial", "process", "process-spawn"}

    def test_engine_rejects_config_plus_overrides(self):
        with pytest.raises(TypeError):
            CharacterizationEngine(EngineConfig(), backend="serial")


class TestSerialEquivalence:
    def test_verdicts_identical_to_seed_path(self, simulated_steps):
        engine = CharacterizationEngine()
        for step in simulated_steps:
            _assert_same_verdicts(
                engine.characterize(step.transition),
                _seed_verdicts(step.transition),
            )

    def test_without_precompute(self, simulated_steps):
        engine = CharacterizationEngine(
            EngineConfig(precompute_neighborhoods=False)
        )
        step = simulated_steps[0]
        _assert_same_verdicts(
            engine.characterize(step.transition),
            _seed_verdicts(step.transition),
        )

    def test_subset_characterization(self, simulated_steps):
        step = simulated_steps[0]
        expected = _seed_verdicts(step.transition)
        subset = step.transition.flagged_sorted[::2]
        got = CharacterizationEngine().characterize(step.transition, subset)
        assert set(got) == set(subset)
        for device in subset:
            assert got[device].anomaly_type == expected[device].anomaly_type

    def test_classify_matches_classify_sets(self, simulated_steps):
        from repro.core.characterize import classify_sets

        step = simulated_steps[0]
        engine = CharacterizationEngine()
        assert engine.classify(step.transition) == classify_sets(
            _seed_verdicts(step.transition)
        )


class TestProcessEquivalence:
    def test_verdicts_identical_to_seed_path(self, simulated_steps):
        engine = CharacterizationEngine(
            EngineConfig(backend="process", workers=2, min_process_devices=1)
        )
        for step in simulated_steps:
            _assert_same_verdicts(
                engine.characterize(step.transition),
                _seed_verdicts(step.transition),
            )

    def test_small_flagged_set_degrades_to_serial(self, simulated_steps):
        # min_process_devices above the flagged count must not spawn a pool
        # (observable: it still produces the right verdicts; the serial
        # path is unit-tested above, this guards the degradation branch).
        step = simulated_steps[0]
        engine = CharacterizationEngine(
            EngineConfig(backend="process", workers=2, min_process_devices=10_000)
        )
        _assert_same_verdicts(
            engine.characterize(step.transition),
            _seed_verdicts(step.transition),
        )

    def test_explicit_chunk_size(self, simulated_steps):
        step = simulated_steps[0]
        engine = CharacterizationEngine(
            EngineConfig(
                backend="process", workers=2, chunk_size=1, min_process_devices=1
            )
        )
        _assert_same_verdicts(
            engine.characterize(step.transition),
            _seed_verdicts(step.transition),
        )


class TestEngineStatsAndCache:
    def test_stats_accumulate_across_transitions(self, simulated_steps):
        engine = CharacterizationEngine()
        total = 0
        for step in simulated_steps:
            total += len(engine.characterize(step.transition))
        assert engine.stats.transitions == len(simulated_steps)
        assert engine.stats.devices_characterized == total
        assert engine.stats.batch_neighborhood_passes == len(simulated_steps)
        assert engine.stats.cache_expansions > 0

    def test_cache_survives_repeat_calls_on_same_transition(
        self, simulated_steps
    ):
        step = simulated_steps[0]
        engine = CharacterizationEngine()
        engine.characterize(step.transition)
        expansions = engine.stats.cache_expansions
        # The second pass over the same transition reuses every family.
        engine.characterize(step.transition)
        assert engine.stats.cache_expansions == expansions

    def test_fresh_transition_gets_fresh_cache(self, simulated_steps):
        engine = CharacterizationEngine()
        engine.characterize(simulated_steps[0].transition)
        first = engine.stats.cache_expansions
        engine.characterize(simulated_steps[1].transition)
        assert engine.stats.cache_expansions > first

    def test_process_backend_reports_worker_expansions(self, simulated_steps):
        # Worker caches are invisible to the parent; their expansion
        # counts must still reach the run-level stats.
        step = simulated_steps[0]
        engine = CharacterizationEngine(
            EngineConfig(backend="process", workers=2, min_process_devices=1)
        )
        engine.characterize(step.transition)
        assert engine.stats.cache_expansions > 0


class TestDriverIntegration:
    def test_simulation_step_routes_through_engine(self, simulated_steps):
        step = simulated_steps[0]
        engine = CharacterizationEngine()
        _assert_same_verdicts(
            step.characterize(engine=engine), _seed_verdicts(step.transition)
        )
        assert engine.stats.transitions == 1

    def test_simulation_step_kwargs_build_engine(self, simulated_steps):
        step = simulated_steps[0]
        verdicts = step.characterize(budget_fallback=True)
        _assert_same_verdicts(verdicts, _seed_verdicts(step.transition))

    def test_simulation_step_rejects_engine_plus_kwargs(self, simulated_steps):
        with pytest.raises(TypeError):
            simulated_steps[0].characterize(
                engine=CharacterizationEngine(), budget_fallback=True
            )

    def test_run_characterized_shares_one_engine(self):
        simulator = Simulator(SimulationConfig(n=200, errors_per_step=6, seed=9))
        outcomes = simulator.run_characterized(2)
        assert len(outcomes) == 2
        assert simulator.engine.stats.transitions == 2
        for step, verdicts in outcomes:
            _assert_same_verdicts(verdicts, _seed_verdicts(step.transition))

    def test_runner_rejects_engine_plus_knobs(self):
        from repro.experiments.runner import simulate_and_accumulate

        with pytest.raises(TypeError, match="engine plus"):
            simulate_and_accumulate(
                SimulationConfig(n=100, errors_per_step=2),
                steps=1,
                seeds=(0,),
                engine=CharacterizationEngine(),
                count_all_collections=True,
            )

    def test_runner_accepts_shared_engine(self):
        from repro.experiments.runner import simulate_and_accumulate

        engine = CharacterizationEngine()
        accumulator = simulate_and_accumulate(
            SimulationConfig(n=100, errors_per_step=2),
            steps=1,
            seeds=(0,),
            engine=engine,
        )
        assert engine.stats.transitions == 1
        assert accumulator.mean_flagged > 0
