"""Persistent worker-pool backend: lifecycle, respawn, carry, results.

The pool's contract has four load-bearing pieces:

* verdicts are bit-identical to the serial seed path (equivalence);
* workers persist across ``run()`` calls and are respawned on death or
  after ``max_worker_tasks`` retirements;
* cross-tick family carry only engages when the invariant holds (the
  immediately previous run on the backend was a pool run of the same
  shape) — a serial-fallback tick in between voids it;
* all work counters travel in the returned :class:`BackendRun`, never
  through mutable backend attributes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError
from repro.core.transition import Snapshot, Transition
from repro.engine import (
    BackendRun,
    CharacterizationEngine,
    EngineConfig,
    SpawnProcessBackend,
    WorkerPoolBackend,
)


def _transition(seed=0, n=80, r=0.05, tau=2, drift=0.01):
    rng = np.random.default_rng(seed)
    prev = rng.random((n, 2))
    cur = np.clip(prev + rng.normal(0, drift, (n, 2)), 0, 1)
    return Transition(Snapshot(prev), Snapshot(cur), range(n), r, tau)


def _same_verdicts(got, expected):
    assert set(got) == set(expected)
    for device in expected:
        assert got[device].anomaly_type == expected[device].anomaly_type, device
        assert got[device].rule == expected[device].rule, device
        assert got[device].witness == expected[device].witness, device


@pytest.fixture
def pool_config():
    return EngineConfig(backend="process", workers=2, min_process_devices=1)


class TestPoolLifecycle:
    def test_workers_start_lazily_and_persist(self, pool_config):
        backend = WorkerPoolBackend()
        try:
            assert backend.workers_alive == 0
            t = _transition(0)
            run1 = backend.run(t, t.flagged_sorted, pool_config)
            assert backend.workers_alive == 2
            pids = {w.process.pid for w in backend._state.workers}
            run2 = backend.run(t, t.flagged_sorted, pool_config)
            # Same processes served both runs — no per-call spawn.
            assert {w.process.pid for w in backend._state.workers} == pids
            _same_verdicts(run2.verdicts, run1.verdicts)
        finally:
            backend.close()
        assert backend.workers_alive == 0

    def test_close_is_idempotent_and_pool_restarts(self, pool_config):
        backend = WorkerPoolBackend()
        t = _transition(1)
        backend.run(t, t.flagged_sorted, pool_config)
        backend.close()
        backend.close()
        # A closed backend restarts lazily on the next run.
        run = backend.run(t, t.flagged_sorted, pool_config)
        assert backend.workers_alive == 2
        _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
        backend.close()

    def test_engine_context_manager_closes_pool(self, pool_config):
        t = _transition(2)
        with CharacterizationEngine(pool_config) as engine:
            engine.characterize(t)
            assert engine.backend.workers_alive == 2
        assert engine.backend.workers_alive == 0

    def test_dead_worker_is_respawned(self, pool_config):
        backend = WorkerPoolBackend()
        try:
            t = _transition(3)
            expected = Characterizer(t).characterize_all()
            backend.run(t, t.flagged_sorted, pool_config)
            victim = backend._state.workers[0].process
            victim.terminate()
            victim.join(timeout=5.0)
            run = backend.run(t, t.flagged_sorted, pool_config)
            _same_verdicts(run.verdicts, expected)
            assert backend.workers_alive == 2
        finally:
            backend.close()

    def test_dead_worker_raises_when_respawn_disabled(self):
        config = EngineConfig(
            backend="process",
            workers=2,
            min_process_devices=1,
            worker_respawn=False,
        )
        backend = WorkerPoolBackend()
        try:
            t = _transition(4)
            backend.run(t, t.flagged_sorted, config)
            victim = backend._state.workers[0].process
            victim.terminate()
            victim.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="worker_respawn is off"):
                backend.run(t, t.flagged_sorted, config)
        finally:
            backend.close()

    def test_max_worker_tasks_retires_workers(self):
        config = EngineConfig(
            backend="process",
            workers=2,
            min_process_devices=1,
            max_worker_tasks=1,
        )
        backend = WorkerPoolBackend()
        try:
            t = _transition(5)
            backend.run(t, t.flagged_sorted, config)
            first_pids = {w.process.pid for w in backend._state.workers}
            run = backend.run(t, t.flagged_sorted, config)
            second_pids = {w.process.pid for w in backend._state.workers}
            assert first_pids.isdisjoint(second_pids)
            _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
        finally:
            backend.close()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(max_worker_tasks=0)


class TestPoolEquivalenceAndCarry:
    def test_verdicts_identical_across_backends(self):
        t = _transition(6, n=120)
        expected = Characterizer(t).characterize_all()
        for backend_name in ("serial", "process", "process-spawn"):
            with CharacterizationEngine(
                EngineConfig(
                    backend=backend_name, workers=3, min_process_devices=1
                )
            ) as engine:
                _same_verdicts(engine.characterize(t), expected)

    def test_carry_clean_skips_recomputation(self, pool_config):
        t1 = _transition(7, n=100)
        t2 = Transition(
            Snapshot(t1.previous.positions.copy()),
            Snapshot(t1.current.positions.copy()),
            t1.flagged,
            t1.r,
            t1.tau,
        )
        with CharacterizationEngine(pool_config) as engine:
            engine.characterize(t1)
            run = engine.characterize_run(
                t2, carry_clean=t2.flagged_sorted
            )
            # Identical transition + full clean set: every family carried.
            assert run.families_recomputed == 0
            assert run.families_reused > 0
            _same_verdicts(
                run.verdicts, Characterizer(t2).characterize_all()
            )

    def test_serial_fallback_voids_worker_carry(self):
        config = EngineConfig(
            backend="process", workers=2, min_process_devices=10
        )
        t1 = _transition(8, n=60)
        t2 = Transition(
            Snapshot(t1.previous.positions.copy()),
            Snapshot(t1.current.positions.copy()),
            t1.flagged,
            t1.r,
            t1.tau,
        )
        with CharacterizationEngine(config) as engine:
            engine.characterize(t1)  # pool path (60 >= 10)
            # Tiny run degrades to serial: worker caches go stale.
            engine.characterize(t1, devices=t1.flagged_sorted[:2])
            run = engine.characterize_run(t2, carry_clean=t2.flagged_sorted)
            # The carry must NOT have been honoured by the workers.
            assert run.families_recomputed > 0

    def test_partially_engaged_worker_does_not_carry_stale_cache(self):
        # Regression: a small tick engages fewer workers than the pool
        # holds; an idled worker's cache is then MORE than one run old,
        # and the next run's one-step clean set is not valid for it.
        # The per-worker run-sequence gate must withhold the carry.
        config = EngineConfig(
            backend="process", workers=2, chunk_size=1, min_process_devices=1
        )
        quiet = np.array([[0.1, 0.1], [0.9, 0.9], [0.5, 0.1], [0.5, 0.9]])
        merged = np.array([[0.1, 0.1], [0.9, 0.9], [0.9, 0.9], [0.9, 0.9]])

        def stationary(points):
            return Transition(
                Snapshot(points.copy()), Snapshot(points.copy()),
                range(4), 0.05, 2,
            )

        backend = WorkerPoolBackend()
        try:
            # Run 1: everyone isolated; worker 1 caches families of {1, 3}.
            backend.run(stationary(quiet), range(4), config)
            # Run 2: a one-device tick — only worker 0 engages, worker 1
            # idles while devices 1..3 merge into one dense motion.
            backend.run(stationary(merged), [0], config)
            # Run 3: full tick with a clean set valid for run2 -> run3
            # (nothing moved between them).  Worker 1's cache is from
            # run 1, where device 1's family was empty — carrying it
            # would report 'isolated' instead of 'massive'.
            t3 = stationary(merged)
            run = backend.run(t3, range(4), config, carry_clean=range(4))
            _same_verdicts(run.verdicts, Characterizer(t3).characterize_all())
        finally:
            backend.close()

    def test_fallback_consults_shared_cache(self):
        # Below min_process_devices the pool degrades to serial and the
        # engine's shared cache (with its carry) does the caching.
        config = EngineConfig(
            backend="process", workers=2, min_process_devices=1_000
        )
        t = _transition(9, n=40)
        with CharacterizationEngine(config) as engine:
            engine.characterize(t)
            before = engine.stats.cache_expansions
            engine.characterize(t)  # same transition: shared cache hits
            assert engine.stats.cache_expansions == before
            assert engine.backend.workers_alive == 0  # never spawned


class TestBackendRunResults:
    def test_run_results_not_stored_on_backend(self, pool_config):
        # Work counters travel in the BackendRun value; a backend holds
        # no per-run mutable result state two engines could trample.
        for backend in (WorkerPoolBackend(), SpawnProcessBackend()):
            try:
                assert not hasattr(backend, "last_expansions")
                t = _transition(10, n=40)
                run = backend.run(t, t.flagged_sorted, pool_config)
                assert isinstance(run, BackendRun)
                assert run.expansions is not None and run.expansions > 0
            finally:
                backend.close()

    def test_shared_backend_instance_keeps_engines_truthful(
        self, pool_config
    ):
        # Two engines interleaving runs on one backend each see their own
        # run's counters (the old attribute side-channel could leak a
        # stale count from the other engine's run).
        backend = WorkerPoolBackend()
        try:
            t_a = _transition(11, n=50)
            t_b = _transition(12, n=50, drift=0.002)
            run_a = backend.run(t_a, t_a.flagged_sorted, pool_config)
            run_b = backend.run(t_b, t_b.flagged_sorted, pool_config)
            again_a = backend.run(t_a, t_a.flagged_sorted, pool_config)
            _same_verdicts(again_a.verdicts, run_a.verdicts)
            assert run_b.expansions is not None
        finally:
            backend.close()

    def test_worker_error_propagates_with_traceback(self, pool_config):
        backend = WorkerPoolBackend()
        try:
            t = _transition(13, n=20)
            with pytest.raises(RuntimeError, match="pool worker"):
                # Device 10**6 does not exist: the worker raises, the
                # parent surfaces the worker traceback.
                backend.run(t, [10**6] + list(t.flagged_sorted), pool_config)
            # The pool survives a failed run and serves the next one.
            run = backend.run(t, t.flagged_sorted, pool_config)
            _same_verdicts(run.verdicts, Characterizer(t).characterize_all())
        finally:
            backend.close()

    def test_failed_run_does_not_strand_sibling_replies(self, pool_config):
        # Regression: scatter-then-gather sent every task before the
        # first 'err' reply raised; the healthy workers' replies stayed
        # queued in their pipes, and the *next* run consumed them —
        # silently merging the previous transition's verdicts.  The
        # failed run now restarts the pool, so a DIFFERENT transition
        # afterwards must come back exactly right.
        backend = WorkerPoolBackend()
        try:
            t_bad = _transition(14, n=24)
            with pytest.raises(RuntimeError, match="pool worker"):
                backend.run(
                    t_bad, [10**6] + list(t_bad.flagged_sorted), pool_config
                )
            t_next = _transition(15, n=24, drift=0.003)
            run = backend.run(t_next, t_next.flagged_sorted, pool_config)
            _same_verdicts(
                run.verdicts, Characterizer(t_next).characterize_all()
            )
        finally:
            backend.close()
