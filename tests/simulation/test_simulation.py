"""Tests for the Section VII-A simulator and ground-truth ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.simulation import (
    ErrorKind,
    PAPER_DEFAULTS,
    SimulationConfig,
    Simulator,
)


def small_config(**overrides) -> SimulationConfig:
    base = dict(n=200, errors_per_step=5, isolated_probability=0.5, seed=1)
    base.update(overrides)
    return SimulationConfig(**base)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("n", 1),
            ("dim", 0),
            ("r", 0.3),
            ("tau", 0),
            ("errors_per_step", -1),
            ("isolated_probability", 1.5),
            ("isolated_error_rate", -0.1),
            ("r3_separation_factor", 3.0),
            ("correlated_error_probability", 2.0),
            ("massive_superposition_probability", -0.5),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigurationError):
            small_config(**{field: value})

    def test_tau_bounded_by_n(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n=3, tau=3)

    def test_paper_defaults_valid(self):
        assert PAPER_DEFAULTS.n == 1000
        assert PAPER_DEFAULTS.r == 0.03
        assert PAPER_DEFAULTS.tau == 3

    def test_with_overrides(self):
        cfg = small_config().with_overrides(errors_per_step=9)
        assert cfg.errors_per_step == 9
        assert cfg.n == 200

    def test_relaxed_variant(self):
        relaxed = small_config().relaxed_r3(0.25)
        assert not relaxed.enforce_r3
        assert relaxed.require_dense_ball  # massive errors stay genuine
        assert relaxed.correlated_error_probability == 0.25


class TestSimulatorBasics:
    def test_reproducible_under_seed(self):
        a = Simulator(small_config())
        b = Simulator(small_config())
        step_a = a.step()
        step_b = b.step()
        assert step_a.transition.flagged == step_b.transition.flagged
        assert np.allclose(
            step_a.transition.current.positions, step_b.transition.current.positions
        )

    def test_positions_stay_in_unit_cube(self):
        sim = Simulator(small_config())
        for step in sim.run(5):
            positions = step.transition.current.positions
            assert positions.min() >= 0.0
            assert positions.max() <= 1.0

    def test_flagged_equals_ledger_truth(self):
        sim = Simulator(small_config())
        for step in sim.run(3):
            assert step.transition.flagged == step.truth.flagged

    def test_unimpacted_devices_do_not_move(self):
        sim = Simulator(small_config())
        step = sim.step()
        moved = np.any(
            step.transition.previous.positions != step.transition.current.positions,
            axis=1,
        )
        movers = set(np.nonzero(moved)[0].tolist())
        assert movers <= set(step.truth.flagged)

    def test_step_counter(self):
        sim = Simulator(small_config())
        sim.run(4)
        assert sim.current_step == 4
        assert len(sim.ledger) == 4


class TestErrorInjection:
    def test_r1_disjoint_errors(self):
        sim = Simulator(small_config(errors_per_step=20))
        for step in sim.run(3):
            seen = set()
            for record in step.truth.records:
                assert not (record.members & seen), "R1 violated"
                seen |= record.members

    def test_r2_groups_move_consistently(self):
        # Every error's member set must be r-consistent at both times.
        sim = Simulator(small_config(errors_per_step=10))
        for step in sim.run(3):
            for record in step.truth.records:
                assert step.transition.is_consistent_motion(record.members)

    def test_isolated_errors_small(self):
        cfg = small_config(isolated_probability=1.0)
        sim = Simulator(cfg)
        for step in sim.run(3):
            for record in step.truth.records:
                assert record.kind is ErrorKind.ISOLATED
                assert record.size <= cfg.tau

    def test_massive_errors_dense_when_required(self):
        cfg = small_config(
            n=1000, isolated_probability=0.0, errors_per_step=10
        )
        sim = Simulator(cfg)
        step = sim.step()
        for record in step.truth.records:
            assert record.kind is ErrorKind.MASSIVE
            assert record.size > cfg.tau

    def test_massive_can_degenerate_when_relaxed(self):
        cfg = (
            small_config(n=200, isolated_probability=0.0, errors_per_step=15)
            .relaxed_r3(0.0)
            .with_overrides(require_dense_ball=False)
        )
        sim = Simulator(cfg)
        sizes = [
            record.size for step in sim.run(5) for record in step.truth.records
        ]
        assert any(size <= cfg.tau for size in sizes)

    def test_truth_split_is_partition(self):
        cfg = small_config(errors_per_step=10)
        sim = Simulator(cfg)
        for step in sim.run(3):
            massive = step.truth.truly_massive(cfg.tau)
            isolated = step.truth.truly_isolated(cfg.tau)
            assert massive | isolated == step.truth.flagged
            assert not massive & isolated

    def test_error_of_lookup(self):
        sim = Simulator(small_config())
        step = sim.step()
        for record in step.truth.records:
            for member in record.members:
                assert step.truth.error_of(member) is record
        assert step.truth.error_of(10**6) is None


class TestR3Enforcement:
    def test_enforced_mode_keeps_isolated_sparse(self):
        """Under R3 enforcement no truly-isolated device may land in a
        tau-dense motion (the defining property of Restriction R3)."""
        from repro.core.motions import motion_family

        cfg = small_config(
            n=600, errors_per_step=15, isolated_probability=0.6, seed=5
        )
        sim = Simulator(cfg)
        for step in sim.run(4):
            isolated_truth = step.truth.truly_isolated(cfg.tau)
            for device in isolated_truth:
                family = motion_family(step.transition, device)
                assert not family.has_dense_motion, (
                    f"device {device} in dense motion despite R3 enforcement"
                )

    def test_relaxed_mode_produces_r3_violations(self):
        from repro.core.motions import motion_family

        cfg = small_config(
            n=600, errors_per_step=25, isolated_probability=0.6, seed=5
        ).relaxed_r3(0.5)
        sim = Simulator(cfg)
        violations = 0
        for step in sim.run(5):
            isolated_truth = step.truth.truly_isolated(cfg.tau)
            for device in isolated_truth:
                if motion_family(step.transition, device).has_dense_motion:
                    violations += 1
        assert violations > 0

    def test_superposition_creates_unresolved(self):
        from repro.core.characterize import characterize_transition, classify_sets

        cfg = SimulationConfig(
            n=1000,
            errors_per_step=25,
            isolated_probability=0.0,
            massive_superposition_probability=0.05,
            seed=2,
        )
        sim = Simulator(cfg)
        unresolved_total = 0
        for step in sim.run(3):
            _, _, unresolved = classify_sets(
                characterize_transition(
                    step.transition,
                    collection_budget=500_000,
                    budget_fallback=True,
                )
            )
            unresolved_total += len(unresolved)
        assert unresolved_total > 0

    def test_no_superposition_no_unresolved(self):
        from repro.core.characterize import characterize_transition, classify_sets

        cfg = SimulationConfig(
            n=1000,
            errors_per_step=15,
            isolated_probability=0.0,
            massive_superposition_probability=0.0,
            seed=2,
        )
        sim = Simulator(cfg)
        for step in sim.run(3):
            _, _, unresolved = classify_sets(characterize_transition(step.transition))
            assert not unresolved
